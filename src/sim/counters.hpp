// nvprof-substitute: the performance events the timing simulator collects.
// Sec. II-B of the paper screens 265 nvprof events down to five; we expose
// the full set our substrate can produce and let the event selector
// (src/tools) do the screening.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.hpp"
#include "dram/gddr.hpp"

namespace gpuhms {

struct ProfileCounters {
  // --- issue pipeline -----------------------------------------------------
  std::uint64_t inst_executed = 0;  // first issues only
  std::uint64_t inst_issued = 0;    // including replays
  std::uint64_t issue_slots = 0;    // slots consumed (== inst_issued, single-issue)
  std::uint64_t inst_integer = 0;   // IAlu executed (addressing lands here)
  std::uint64_t inst_fp32 = 0;
  std::uint64_t inst_fp64 = 0;
  std::uint64_t inst_sfu = 0;
  std::uint64_t ldst_executed = 0;
  std::uint64_t ldst_issued = 0;    // including replays

  // --- replays by cause (Sec. III-B list) ---------------------------------
  std::uint64_t replay_global_divergence = 0;  // (1)
  std::uint64_t replay_const_miss = 0;         // (2)
  std::uint64_t replay_const_divergence = 0;   // (3)
  std::uint64_t replay_shared_conflict = 0;    // (4)
  std::uint64_t replay_double_issue = 0;       // (5)

  std::uint64_t replays_1_4() const {
    return replay_global_divergence + replay_const_miss +
           replay_const_divergence + replay_shared_conflict;
  }
  std::uint64_t replays_total() const {
    return replays_1_4() + replay_double_issue;
  }

  // --- memory system ------------------------------------------------------
  std::uint64_t global_requests = 0;      // warp-level global LD/ST
  std::uint64_t global_transactions = 0;  // 128 B transactions after coalescing
  std::uint64_t l2_transactions = 0;      // reads + writes seen at L2
  std::uint64_t l2_misses = 0;
  std::uint64_t const_requests = 0;
  std::uint64_t const_cache_misses = 0;
  std::uint64_t tex_requests = 0;
  std::uint64_t tex_transactions = 0;
  std::uint64_t tex_cache_misses = 0;
  std::uint64_t shared_requests = 0;
  std::uint64_t shared_bank_conflicts = 0;
  std::uint64_t dram_requests = 0;

  // --- stalls / occupancy ---------------------------------------------------
  std::uint64_t mem_stall_cycles = 0;   // summed over SMs
  std::uint64_t comp_stall_cycles = 0;
  std::uint64_t sync_stall_cycles = 0;
  std::uint64_t busy_issue_cycles = 0;  // slots actually used, summed over SMs
  double warps_per_sm = 0.0;            // resident occupancy
  std::uint64_t total_warps = 0;
  int active_sms = 0;

  // Named export for the cosine-similarity event screening.
  std::map<std::string, double> as_event_map() const;
};

struct SimResult {
  std::uint64_t cycles = 0;  // kernel execution time
  ProfileCounters counters;
  DramStats dram;

  // Measured average DRAM latency (cycles) and AMAT ingredients.
  double measured_dram_latency() const { return dram.avg_latency(); }
};

// Checks a (possibly externally supplied) sample measurement before the
// predictor calibrates on it: the anchoring and replay math require a
// nonzero kernel time, a nonzero warp count, and issue counters that are
// mutually consistent (issued = executed + replays). Returns
// INVALID_ARGUMENT naming the offending counter.
Status validate(const SimResult& result);

}  // namespace gpuhms
