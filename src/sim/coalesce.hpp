// Warp-level memory request formation, shared by the timing simulator and
// the model's trace analysis so both agree on how lane addresses become
// transactions, divergences, and bank conflicts.
//
// The core primitives write into caller-provided fixed-capacity buffers (a
// warp touches at most kWarpSize distinct lines/words) and exploit that real
// access patterns are overwhelmingly lane-monotone: addresses are gathered
// with an on-the-fly sortedness check, and only the rare non-monotone warp
// pays for a (bounded, in-place) insertion sort. The results are identical
// to the original sort+unique formulation — ascending, deduplicated — which
// the replay paths rely on for bit-identical cache and row-buffer walks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "isa/op.hpp"

namespace gpuhms {

namespace detail {

// Ascending insertion sort; n <= kWarpSize, only hit on non-monotone warps.
inline void sort_small(std::uint64_t* v, int n) {
  for (int i = 1; i < n; ++i) {
    const std::uint64_t x = v[i];
    int j = i - 1;
    while (j >= 0 && v[j] > x) {
      v[j + 1] = v[j];
      --j;
    }
    v[j + 1] = x;
  }
}

// Gathers f(lane address) for active lanes into `out`, sorts unless already
// non-decreasing, and deduplicates adjacent values. Returns the distinct
// count; `out` holds the values ascending (exactly sort+unique's output).
template <class F>
inline int gather_distinct(std::uint32_t active_mask, const std::int64_t* addr,
                           std::uint64_t* out, F&& f) {
  int n = 0;
  bool sorted = true;
  std::uint64_t prev = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (!(active_mask & (1u << l))) continue;
    const std::uint64_t v = f(static_cast<std::uint64_t>(addr[l]));
    sorted &= (n == 0) | (v >= prev);
    out[n++] = v;
    prev = v;
  }
  if (!sorted) sort_small(out, n);
  int m = 0;
  for (int i = 0; i < n; ++i) {
    if (m == 0 || out[i] != out[m - 1]) out[m++] = out[i];
  }
  return m;
}

}  // namespace detail

// Distinct cache-line addresses touched by the active lanes (global/texture
// coalescing), written ascending into out[0..return) — line-aligned *byte*
// values. `out` must hold kWarpSize entries.
inline int coalesce_lines_buf(std::uint32_t active_mask,
                              const std::int64_t* addr, std::size_t line_size,
                              std::uint64_t* out) {
  if ((line_size & (line_size - 1)) == 0) {
    const std::uint64_t line_mask =
        ~(static_cast<std::uint64_t>(line_size) - 1);
    return detail::gather_distinct(
        active_mask, addr, out,
        [line_mask](std::uint64_t a) { return a & line_mask; });
  }
  return detail::gather_distinct(
      active_mask, addr, out,
      [line_size](std::uint64_t a) { return a / line_size * line_size; });
}

// Vector-output form kept for the existing simulator/test call sites.
inline void coalesce_lines(std::uint32_t active_mask,
                           const std::int64_t* addr, std::size_t line_size,
                           std::vector<std::uint64_t>& out) {
  std::uint64_t buf[kWarpSize];
  const int n = coalesce_lines_buf(active_mask, addr, line_size, buf);
  out.assign(buf, buf + n);
}

inline void coalesce_lines(const TraceOp& op, std::size_t line_size,
                           std::vector<std::uint64_t>& out) {
  coalesce_lines(op.active_mask, op.addr.data(), line_size, out);
}

// Number of distinct word (4 B) addresses among active lanes; constant
// memory broadcasts when this is 1, and each extra address is an indexed-
// constant divergence replay (cause 3).
inline int distinct_words(std::uint32_t active_mask,
                          const std::int64_t* addr) {
  std::uint64_t words[kWarpSize];
  return detail::gather_distinct(active_mask, addr, words,
                                 [](std::uint64_t a) { return a / 4; });
}

inline int distinct_words(const TraceOp& op) {
  return distinct_words(op.active_mask, op.addr.data());
}

// Shared-memory bank-conflict degree: the maximum number of *distinct* words
// any bank must serve for this warp access (1 = conflict-free). Lanes hitting
// the same word broadcast. Computed as a bank histogram over the globally
// distinct words — equivalent to the previous per-bank dedup scratch, since
// each word maps to exactly one bank. num_banks <= 64 (same bound as the
// previous implementation's scratch rows).
inline int shared_conflict_degree(std::uint32_t active_mask,
                                  const std::int64_t* addr, int num_banks) {
  std::uint64_t words[kWarpSize];
  const int n = detail::gather_distinct(active_mask, addr, words,
                                        [](std::uint64_t a) { return a / 4; });
  std::uint8_t per_bank[64] = {};
  int degree = 1;
  for (int i = 0; i < n; ++i) {
    const int bank =
        static_cast<int>(words[i] % static_cast<std::uint64_t>(num_banks));
    per_bank[bank] = static_cast<std::uint8_t>(per_bank[bank] + 1);
    degree = std::max<int>(degree, per_bank[bank]);
  }
  return degree;
}

inline int shared_conflict_degree(const TraceOp& op, int num_banks) {
  return shared_conflict_degree(op.active_mask, op.addr.data(), num_banks);
}

}  // namespace gpuhms
