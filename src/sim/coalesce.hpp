// Warp-level memory request formation, shared by the timing simulator and
// the model's trace analysis so both agree on how lane addresses become
// transactions, divergences, and bank conflicts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "isa/op.hpp"

namespace gpuhms {

// Distinct cache-line addresses touched by the active lanes (global/texture
// coalescing). Result is sorted, deduplicated, in *byte* units (line-aligned).
inline void coalesce_lines(std::uint32_t active_mask,
                           const std::int64_t* addr, std::size_t line_size,
                           std::vector<std::uint64_t>& out) {
  out.clear();
  for (int l = 0; l < kWarpSize; ++l) {
    if (!(active_mask & (1u << l))) continue;
    const std::uint64_t a = static_cast<std::uint64_t>(addr[l]);
    out.push_back(a / line_size * line_size);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

inline void coalesce_lines(const TraceOp& op, std::size_t line_size,
                           std::vector<std::uint64_t>& out) {
  coalesce_lines(op.active_mask, op.addr.data(), line_size, out);
}

// Number of distinct word (4 B) addresses among active lanes; constant
// memory broadcasts when this is 1, and each extra address is an indexed-
// constant divergence replay (cause 3).
inline int distinct_words(std::uint32_t active_mask,
                          const std::int64_t* addr) {
  std::uint64_t words[kWarpSize];
  int n = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (!(active_mask & (1u << l))) continue;
    words[n++] = static_cast<std::uint64_t>(addr[l]) / 4;
  }
  std::sort(words, words + n);
  return static_cast<int>(std::unique(words, words + n) - words);
}

inline int distinct_words(const TraceOp& op) {
  return distinct_words(op.active_mask, op.addr.data());
}

// Shared-memory bank-conflict degree: the maximum number of *distinct* words
// any bank must serve for this warp access (1 = conflict-free). Lanes hitting
// the same word broadcast.
inline int shared_conflict_degree(std::uint32_t active_mask,
                                  const std::int64_t* addr, int num_banks) {
  // num_banks <= 32 in practice.
  std::uint64_t per_bank_words[64][kWarpSize];
  int per_bank_n[64] = {};
  int degree = 1;
  for (int l = 0; l < kWarpSize; ++l) {
    if (!(active_mask & (1u << l))) continue;
    const std::uint64_t word = static_cast<std::uint64_t>(addr[l]) / 4;
    const int bank = static_cast<int>(word % static_cast<std::uint64_t>(num_banks));
    // Distinct-word insert (linear scan; warp-size bounded).
    bool dup = false;
    for (int i = 0; i < per_bank_n[bank]; ++i) {
      if (per_bank_words[bank][i] == word) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      per_bank_words[bank][per_bank_n[bank]++] = word;
      degree = std::max(degree, per_bank_n[bank]);
    }
  }
  return degree;
}

inline int shared_conflict_degree(const TraceOp& op, int num_banks) {
  return shared_conflict_degree(op.active_mask, op.addr.data(), num_banks);
}

}  // namespace gpuhms
