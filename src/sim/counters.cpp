#include "sim/counters.hpp"

namespace gpuhms {

std::map<std::string, double> ProfileCounters::as_event_map() const {
  std::map<std::string, double> m;
  auto put = [&](const char* k, double v) { m[k] = v; };
  put("inst_executed", static_cast<double>(inst_executed));
  put("inst_issued", static_cast<double>(inst_issued));
  put("issue_slots", static_cast<double>(issue_slots));
  put("inst_integer", static_cast<double>(inst_integer));
  put("inst_fp32", static_cast<double>(inst_fp32));
  put("inst_fp64", static_cast<double>(inst_fp64));
  put("ldst_executed", static_cast<double>(ldst_executed));
  put("ldst_issued", static_cast<double>(ldst_issued));
  put("global_transactions", static_cast<double>(global_transactions));
  put("l2_transactions", static_cast<double>(l2_transactions));
  put("l2_misses", static_cast<double>(l2_misses));
  put("const_requests", static_cast<double>(const_requests));
  put("const_cache_misses", static_cast<double>(const_cache_misses));
  put("tex_requests", static_cast<double>(tex_requests));
  put("tex_cache_misses", static_cast<double>(tex_cache_misses));
  put("shared_requests", static_cast<double>(shared_requests));
  put("shared_bank_conflicts", static_cast<double>(shared_bank_conflicts));
  put("dram_requests", static_cast<double>(dram_requests));
  put("replays_total", static_cast<double>(replays_total()));
  put("mem_stall_cycles", static_cast<double>(mem_stall_cycles));
  put("comp_stall_cycles", static_cast<double>(comp_stall_cycles));
  return m;
}

Status validate(const SimResult& result) {
  const ProfileCounters& c = result.counters;
  if (result.cycles == 0)
    return InvalidArgumentError(
        "sample measurement reports zero cycles; the predictor cannot "
        "calibrate on an empty run");
  if (c.total_warps == 0)
    return InvalidArgumentError("sample measurement reports zero warps");
  if (c.active_sms < 0)
    return InvalidArgumentError("sample measurement reports negative "
                                "active_sms (" +
                                std::to_string(c.active_sms) + ")");
  if (c.inst_issued < c.inst_executed)
    return InvalidArgumentError(
        "sample counters are inconsistent: inst_issued (" +
        std::to_string(c.inst_issued) + ") < inst_executed (" +
        std::to_string(c.inst_executed) + ")");
  if (c.inst_issued != c.inst_executed + c.replays_total())
    return InvalidArgumentError(
        "sample counters are inconsistent: inst_issued (" +
        std::to_string(c.inst_issued) +
        ") != inst_executed + replays_total (" +
        std::to_string(c.inst_executed + c.replays_total()) +
        "); the Eq. 3 replay split depends on this identity");
  return OkStatus();
}

}  // namespace gpuhms
