#include "sim/counters.hpp"

namespace gpuhms {

std::map<std::string, double> ProfileCounters::as_event_map() const {
  std::map<std::string, double> m;
  auto put = [&](const char* k, double v) { m[k] = v; };
  put("inst_executed", static_cast<double>(inst_executed));
  put("inst_issued", static_cast<double>(inst_issued));
  put("issue_slots", static_cast<double>(issue_slots));
  put("inst_integer", static_cast<double>(inst_integer));
  put("inst_fp32", static_cast<double>(inst_fp32));
  put("inst_fp64", static_cast<double>(inst_fp64));
  put("ldst_executed", static_cast<double>(ldst_executed));
  put("ldst_issued", static_cast<double>(ldst_issued));
  put("global_transactions", static_cast<double>(global_transactions));
  put("l2_transactions", static_cast<double>(l2_transactions));
  put("l2_misses", static_cast<double>(l2_misses));
  put("const_requests", static_cast<double>(const_requests));
  put("const_cache_misses", static_cast<double>(const_cache_misses));
  put("tex_requests", static_cast<double>(tex_requests));
  put("tex_cache_misses", static_cast<double>(tex_cache_misses));
  put("shared_requests", static_cast<double>(shared_requests));
  put("shared_bank_conflicts", static_cast<double>(shared_bank_conflicts));
  put("dram_requests", static_cast<double>(dram_requests));
  put("replays_total", static_cast<double>(replays_total()));
  put("mem_stall_cycles", static_cast<double>(mem_stall_cycles));
  put("comp_stall_cycles", static_cast<double>(comp_stall_cycles));
  return m;
}

}  // namespace gpuhms
