// Event-driven Kepler-class GPU timing simulator.
//
// This is the substitution for the paper's Tesla K80 testbed: it executes a
// kernel's materialized trace on a model with
//   * per-SM single-issue warp schedulers where instruction replays consume
//     issue slots (the paper's key T_comp observation),
//   * scoreboard-lite RAW stalls driven by the trace's uses_prev bits,
//   * per-SM constant/texture caches, a shared L2, coalescing,
//   * the banked GDDR system of src/dram with FCFS queues and row buffers.
// It produces the kernel time and nvprof-like counters the analytical models
// take as the "sample placement" profile — and the measured times the
// evaluation compares predictions against.
#pragma once

#include <memory>

#include "sim/counters.hpp"
#include "trace/generator.hpp"

namespace gpuhms {

// Warp scheduling discipline of the SM issue stage. Loose round-robin is
// the default (and what the model's trace interleaving mirrors); greedy-
// then-oldest (GTO) keeps issuing from the current warp until it stalls —
// used to probe the model's robustness to scheduler mismatch.
enum class WarpScheduler { RoundRobin, Gto };

struct SimOptions {
  // Record raw per-bank inter-arrival samples (Fig. 4 reproduction).
  bool record_interarrivals = false;
  WarpScheduler scheduler = WarpScheduler::RoundRobin;
};

class GpuSimulator {
 public:
  explicit GpuSimulator(const GpuArch& arch, SimOptions opts = {});

  SimResult run(const KernelInfo& kernel, const DataPlacement& placement);

  // Raw inter-arrival samples per bank from the last run (empty unless
  // SimOptions::record_interarrivals was set).
  const std::vector<std::vector<std::uint64_t>>& interarrival_samples() const;

 private:
  const GpuArch* arch_;
  SimOptions opts_;
  std::vector<std::vector<std::uint64_t>> last_samples_;
};

// Convenience: simulate a kernel under its default placement.
SimResult simulate(const KernelInfo& kernel, const DataPlacement& placement,
                   const GpuArch& arch = kepler_arch());

}  // namespace gpuhms
