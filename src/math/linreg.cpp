#include "math/linreg.hpp"

#include <cmath>

#include "common/check.hpp"

namespace gpuhms {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  GPUHMS_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  GPUHMS_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::optional<std::vector<double>> solve_linear(Matrix a,
                                                std::vector<double> b) {
  const std::size_t n = a.rows();
  GPUHMS_CHECK(a.cols() == n && b.size() == n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a.at(r, col)) > std::fabs(a.at(pivot, col))) pivot = r;
    }
    if (std::fabs(a.at(pivot, col)) < 1e-12) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a.at(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= a.at(ri, c) * x[c];
    x[ri] = s / a.at(ri, ri);
  }
  return x;
}

std::optional<std::vector<double>> least_squares(const Matrix& x,
                                                 std::span<const double> y,
                                                 double lambda) {
  const std::size_t n = x.rows(), p = x.cols();
  GPUHMS_CHECK(y.size() == n);
  GPUHMS_CHECK(p > 0);
  // Normal equations: (X^T X + lambda I) beta = X^T y.
  Matrix xtx(p, p);
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < p; ++a) {
      const double xa = x.at(i, a);
      if (xa == 0.0) continue;
      xty[a] += xa * y[i];
      for (std::size_t b = a; b < p; ++b) xtx.at(a, b) += xa * x.at(i, b);
    }
  }
  for (std::size_t a = 0; a < p; ++a) {
    xtx.at(a, a) += lambda;
    for (std::size_t b = 0; b < a; ++b) xtx.at(a, b) = xtx.at(b, a);
  }
  return solve_linear(std::move(xtx), std::move(xty));
}

double dot(std::span<const double> a, std::span<const double> b) {
  GPUHMS_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace gpuhms
