// Small dense linear-algebra kit: Gaussian elimination and (ridge-regularized)
// ordinary least squares. Used to train the T_overlap empirical model
// (Eq. 11 of the paper) from the Table IV training placements.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace gpuhms {

// Row-major dense matrix, minimal surface for our needs.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

// Solves A x = b by Gaussian elimination with partial pivoting.
// Returns nullopt when A is (numerically) singular.
std::optional<std::vector<double>> solve_linear(Matrix a,
                                                std::vector<double> b);

// Ordinary least squares with optional ridge term:
//   beta = argmin ||X beta - y||^2 + lambda ||beta||^2
// X is n x p (n samples as rows), y has n entries. The intercept, if wanted,
// must be provided as a constant-1 column of X (the T_overlap model's "c").
// Returns nullopt when the normal equations are singular (e.g. collinear
// features with lambda == 0).
std::optional<std::vector<double>> least_squares(const Matrix& x,
                                                 std::span<const double> y,
                                                 double lambda = 0.0);

// Convenience: y_hat = X beta for a single row of features.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace gpuhms
