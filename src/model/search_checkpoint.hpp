// Durable checkpoint/resume for branch-and-bound placement search.
//
// Binds the in-memory BnbCheckpoint bridge (model/search.hpp) to the
// crash-consistent record journal (common/journal.hpp): a journaled search
// periodically appends its snapshot — incumbent, frontier consumed-child
// counts (from which the certified bounds rebuild), and the evaluated-chunk
// watermark — and try_resume_branch_and_bound restores the latest one after
// a crash. Guarantees (locked by tests/test_search_resume.cpp and the chaos
// harness):
//
//   * A journaled run returns a SearchResult bit-identical to an
//     un-journaled run (snapshots read state, never change it).
//   * A run killed at ANY byte of the journal (the on-disk state after
//     SIGKILL is always a prefix of the appended bytes — see
//     common/journal.hpp) resumes and completes to a SearchResult
//     bit-identical to an uninterrupted run, at any GPUHMS_THREADS.
//   * The certified lower bound recoverable from successive checkpoints is
//     monotone non-decreasing: lb = min(incumbent, frontier bounds), the
//     frontier minimum only rises as children replace their parents, and the
//     incumbent never drops below the optimum.
//   * A torn or corrupted tail record is detected by its checksum, logged,
//     and truncated away — the search resumes from the previous checkpoint;
//     never UB, never a lost journal.
//   * A journal written by a DIFFERENT search (kernel, arch, model options,
//     sample, node_budget/beam_width) is refused with FAILED_PRECONDITION
//     via a binding fingerprint in the journal header.
//
// Record grammar (inside common/journal.hpp's checksummed framing):
//   'H' header      — format version, binding fingerprint
//   'C' checkpoint  — serialized BnbCheckpoint (doubles as bit patterns)
//   'F' final       — the complete SearchResult of a finished search; a
//                     journal ending in 'F' short-circuits resume entirely.
#pragma once

#include <cstdint>
#include <string>

#include "model/search.hpp"

namespace gpuhms {

// What the resume found in the journal — observability for CLI surfaces
// (placement_advisor --resume) and the chaos harness.
struct ResumeInfo {
  bool resumed = false;           // a mid-search checkpoint was restored
  bool already_complete = false;  // the journal carried a final result
  bool tail_truncated = false;    // a torn/corrupt tail record was dropped
  // A checkpoint append failed mid-run (e.g. disk full, injected
  // journal.write fault). The search itself completed — checkpoint
  // durability degraded, correctness did not — but callers that asked for a
  // journal should surface this loudly (placement_advisor exits nonzero).
  bool journal_write_failed = false;
  std::string journal_write_error;
  std::uint64_t checkpoints_read = 0;     // valid 'C' records in the journal
  std::uint64_t checkpoints_written = 0;  // 'C' records appended by this run
  std::uint64_t resumed_visits = 0;       // node-visit watermark restored
};

// The 64-bit digest binding a journal to one search: kernel structure, arch,
// model options, sample placement, and the SearchOptions fields that change
// what the walk computes (node_budget, beam_width). Thread count, deadline
// and checkpoint cadence are deliberately excluded — resuming with different
// values of those is supported and still bit-identical on completion.
std::uint64_t search_journal_fingerprint(const Predictor& predictor,
                                         const SearchOptions& options);

// Runs — or resumes — a branch-and-bound search journaled at `journal_path`:
//   * no journal there     -> fresh search, checkpointing into a new journal
//                             (created atomically: tmp write + rename);
//   * mid-search journal   -> the latest valid checkpoint is restored and
//                             the walk continues from it, appending;
//   * completed journal    -> the stored SearchResult is decoded and
//                             returned verbatim, no model work at all.
// A torn/corrupted tail is truncated (one-line stderr log, never an error);
// checkpoint-append failures degrade to an un-journaled search (see
// ResumeInfo::journal_write_failed). Error contract on top of
// try_search_branch_and_bound:
//   * FAILED_PRECONDITION  — the journal belongs to a different search or
//                            format version;
//   * DATA_LOSS            — the file is not a journal, is unreadable, or
//                            holds an undecodable (checksum-valid) record;
//   * INVALID_ARGUMENT     — a decoded checkpoint does not structurally fit
//                            this kernel (CheckpointMismatch).
// Deadline/cancel stops are OK results (with a stop-point checkpoint
// appended, so the next resume continues exactly there); the final 'F'
// record is only written for runs that finished their walk.
StatusOr<SearchResult> try_resume_branch_and_bound(
    const Predictor& predictor, const SearchOptions& options,
    const std::string& journal_path, ResumeInfo* info = nullptr);

}  // namespace gpuhms
