// Placement search: the optimization layer the paper motivates — the m^n
// placement space is too large to implement-and-measure, so search it with
// the predictor instead. Exhaustive search scores every legal placement;
// greedy coordinate descent handles kernels whose space is too large even to
// *predict* exhaustively. An oracle (simulate everything) provides ground
// truth for evaluating search quality.
#pragma once

#include <cstdint>

#include "model/predictor.hpp"

namespace gpuhms {

struct SearchResult {
  DataPlacement placement;
  double predicted_cycles = 0.0;
  std::size_t evaluated = 0;  // placements scored by the predictor
};

// Scores every legal placement (up to `cap`) with the predictor.
// The predictor must already have a profiled sample.
SearchResult search_exhaustive(const Predictor& predictor,
                               std::size_t cap = 4096);

// Coordinate descent: sweep the arrays repeatedly, moving each to its best
// space with the others fixed, until a full sweep changes nothing (or
// max_sweeps is hit). Evaluates O(n_arrays x n_spaces x sweeps) placements.
SearchResult search_greedy(const Predictor& predictor, int max_sweeps = 4);

struct OracleResult {
  DataPlacement best;
  std::uint64_t best_cycles = 0;
  DataPlacement worst;
  std::uint64_t worst_cycles = 0;
  std::size_t simulated = 0;
};

// Ground truth: simulate every legal placement (up to `cap`). Expensive —
// for evaluation harnesses only.
OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           std::size_t cap = 4096);

}  // namespace gpuhms
