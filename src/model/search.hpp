// Placement search: the optimization layer the paper motivates — the m^n
// placement space is too large to implement-and-measure, so search it with
// the predictor instead. Exhaustive search scores every legal placement;
// greedy coordinate descent handles kernels whose space is too large even to
// *predict* exhaustively. An oracle (simulate everything) provides ground
// truth for evaluating search quality.
//
// Exhaustive search and the oracle fan candidates out over a thread pool,
// record the kernel's placement-independent trace skeleton once and share it
// across all candidates, and (exhaustive only) skip candidates whose cheap
// T_comp lower bound already exceeds the best placement found so far. All of
// it is deterministic: candidates are folded in enumeration order with
// lowest-index-wins tie-breaking and the prune threshold only advances at
// fixed chunk boundaries, so any thread count returns bit-identical results.
#pragma once

#include <cstdint>

#include "common/thread_pool.hpp"
#include "model/predictor.hpp"

namespace gpuhms {

struct SearchOptions {
  std::size_t cap = 4096;  // bound on the enumerated placement space
  // Worker count for candidate evaluation; 0 picks
  // ThreadPool::default_threads() (the GPUHMS_THREADS env var, else the
  // hardware concurrency). Ignored when `pool` is set.
  int num_threads = 0;
  ThreadPool* pool = nullptr;  // reuse an external pool across searches
  // Record the kernel's DSL skeleton once and replay it per candidate
  // instead of re-running the kernel function m^n times.
  bool memoize_trace = true;
  // Skip candidates whose T_comp lower bound exceeds the current best
  // (exhaustive search only; never changes the returned placement).
  bool prune = true;
};

struct SearchResult {
  DataPlacement placement;
  double predicted_cycles = 0.0;
  std::size_t evaluated = 0;  // placements scored by the full predictor
  std::size_t pruned = 0;     // skipped via the T_comp lower bound
  // Enumeration cap observability: a capped search is NOT a full search.
  bool space_truncated = false;
  std::uint64_t space_skipped = 0;  // placement combinations never examined
};

// Scores every legal placement (up to options.cap) with the predictor.
// The predictor must already have a profiled sample.
SearchResult search_exhaustive(const Predictor& predictor,
                               const SearchOptions& options = {});
SearchResult search_exhaustive(const Predictor& predictor, std::size_t cap);

// Coordinate descent: sweep the arrays repeatedly, moving each to its best
// space with the others fixed, until a full sweep changes nothing (or
// max_sweeps is hit). Evaluates O(n_arrays x n_spaces x sweeps) placements.
SearchResult search_greedy(const Predictor& predictor, int max_sweeps = 4);

struct OracleResult {
  DataPlacement best;
  std::uint64_t best_cycles = 0;
  DataPlacement worst;
  std::uint64_t worst_cycles = 0;
  std::size_t simulated = 0;
  bool space_truncated = false;
  std::uint64_t space_skipped = 0;
};

// Ground truth: simulate every legal placement (up to options.cap), spread
// over the thread pool. Expensive — for evaluation harnesses only.
OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           const SearchOptions& options = {});
OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           std::size_t cap);

}  // namespace gpuhms
