// Placement search: the optimization layer the paper motivates — the m^n
// placement space is too large to implement-and-measure, so search it with
// the predictor instead. Exhaustive search scores every legal placement;
// greedy coordinate descent handles kernels whose space is too large even to
// *predict* exhaustively. An oracle (simulate everything) provides ground
// truth for evaluating search quality.
//
// Exhaustive search and the oracle fan candidates out over a thread pool,
// record the kernel's placement-independent trace skeleton once and share it
// across all candidates, and (exhaustive only) skip candidates whose
// admissible PlacementBounder lower bound already exceeds the best placement
// found so far — with a self-gate that turns the check off when it cannot
// pay for itself (see SearchResult::prune_gate_reason). All of it is
// deterministic: candidates are folded in enumeration order with
// lowest-index-wins tie-breaking, and both the prune threshold and the gate
// only advance at fixed chunk boundaries, so any thread count returns
// bit-identical results.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "model/predictor.hpp"

namespace gpuhms {

// --- branch-and-bound checkpoint bridge --------------------------------------
// A self-contained snapshot of the branch-and-bound tree walk, captured at a
// node-visit boundary. Deliberately minimal: child lists are NOT stored —
// build_children is deterministic, so the DFS stack reconstructs from the
// per-frame consumed-child counts alone, and the path placement follows from
// each frame's last consumed child. Including the un-flushed leaf buffer
// means snapshots never perturb flush timing: a journaled run, and a run
// resumed from any of its snapshots, both complete to a SearchResult
// bit-identical to an uninterrupted search. Produced/consumed by
// search_branch_and_bound via SearchOptions; serialized by
// model/search_checkpoint.* — callers wanting durability should use
// try_resume_branch_and_bound instead of wiring these directly.
struct BnbCheckpoint {
  // Incumbent (empty placement when !incumbent_valid).
  std::vector<MemSpace> incumbent;
  std::uint64_t incumbent_cycles_bits = 0;  // double bit pattern, bit-exact
  bool incumbent_valid = false;
  std::uint64_t incumbent_updates = 0;
  // Counters (the evaluated-chunk watermark and tree tallies).
  std::uint64_t evaluated = 0;
  std::uint64_t nodes_expanded = 0;
  std::uint64_t pruned_subtrees = 0;
  std::uint64_t visits = 0;  // node-visit count, the checkpoint cadence clock
  // DFS frontier: stack_next[d] = children already consumed at depth d. The
  // frontier bounds (hence the certified lower bound) rebuild from this.
  std::vector<std::uint32_t> stack_next;
  // Leaves buffered but not yet batch-evaluated, in DFS order.
  std::vector<std::vector<MemSpace>> pending;
};

// Receives snapshots during the tree walk (every
// SearchOptions::checkpoint_interval visits and at deadline/cancel stops).
// Called on the search thread; implementations must not re-enter the search.
class BnbCheckpointSink {
 public:
  virtual ~BnbCheckpointSink() = default;
  virtual void on_checkpoint(const BnbCheckpoint& state) = 0;
};

// Thrown by search_branch_and_bound when SearchOptions::resume_from does not
// structurally match the search (different kernel/arch, corrupted snapshot);
// try_search_branch_and_bound converts it to INVALID_ARGUMENT.
class CheckpointMismatch : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SearchOptions {
  std::size_t cap = 4096;  // bound on the enumerated placement space
  // Worker count for candidate evaluation; 0 picks
  // ThreadPool::default_threads() (the GPUHMS_THREADS env var, else the
  // hardware concurrency). Ignored when `pool` is set.
  int num_threads = 0;
  ThreadPool* pool = nullptr;  // reuse an external pool across searches
  // Record the kernel's DSL skeleton once and replay it per candidate
  // instead of re-running the kernel function m^n times.
  bool memoize_trace = true;
  // Skip candidates whose admissible lower bound (PlacementBounder: T_comp
  // addressing floor maxed with the T_mem floor) exceeds the current best
  // (exhaustive search only; never changes the returned placement). The
  // search self-gates the check: spaces too small to amortize it, and
  // searches where probing shows the bound too loose to ever fire, run
  // without the per-candidate test — SearchResult::prune_gate_reason says
  // which case applied.
  bool prune = true;
  // Wall-clock budget, measured from search entry. When it expires the
  // search stops at the next chunk boundary and returns the best among the
  // candidates already scored, with deadline_hit set. The completed prefix
  // is bit-identical to an uninterrupted run (expiry is only checked at
  // chunk boundaries, never mid-chunk). A zero (already-expired) deadline
  // still scores the first candidate so the result is always a valid,
  // comparable placement.
  std::optional<std::chrono::steady_clock::duration> deadline;
  // Cooperative cancellation: when *cancel reads true the search stops at
  // the next chunk boundary with `cancelled` set, same best-so-far
  // semantics as the deadline. The token outlives the call; the search
  // never writes it.
  const std::atomic<bool>* cancel = nullptr;
  // Branch-and-bound only: stop after this many tree-node expansions — the
  // sign that the bound is too loose to prune — and refine the incumbent
  // with one deterministic beam pass (search_beam) instead, keeping the
  // certified gap from the abandoned frontier. Node counts are wall-clock
  // independent, so a budgeted run stays bit-reproducible (unlike a
  // deadline). 0 = unlimited.
  std::size_t node_budget = 0;
  // Beam width for search_beam and the branch-and-bound fallback pass.
  std::size_t beam_width = 8;
  // --- crash-safe checkpointing (branch-and-bound only) ---------------------
  // When `checkpoint_sink` is set, the tree walk emits a BnbCheckpoint every
  // `checkpoint_interval` node visits (at visit boundaries, so emission never
  // changes what the search computes) and once more when a deadline/cancel
  // stop interrupts the walk. When `resume_from` is set, the walk restores
  // that snapshot instead of starting from the greedy seed, and continues
  // exactly the interrupted computation — same prune decisions, counters,
  // and (on completion) a bit-identical SearchResult. Most callers want
  // try_resume_branch_and_bound (model/search_checkpoint.hpp), which wires
  // both ends to a durable journal.
  BnbCheckpointSink* checkpoint_sink = nullptr;
  std::size_t checkpoint_interval = 1024;
  const BnbCheckpoint* resume_from = nullptr;
};

struct SearchResult {
  DataPlacement placement;
  double predicted_cycles = 0.0;
  std::size_t evaluated = 0;  // placements scored by the full predictor
  std::size_t pruned = 0;     // skipped via the admissible lower bound
  // Prune observability (exhaustive search): when `pruned` is 0 these say
  // why, instead of leaving a dead knob in the benchmark output.
  //   prune_checks       bound evaluations actually performed
  //   prune_bound_ratio  max(bound seen) / best cycles so far — how close
  //                      the bound ever came to the prune threshold (a value
  //                      well under 1 means the bound is too loose to fire)
  //   prune_gate_reason  "off" (options.prune false / non-exhaustive),
  //                      "no-skeleton" (no memoized trace to bound against),
  //                      "small-space" (space too small to amortize checks),
  //                      "gated-ineffective" (probing showed a hopeless
  //                      bound; checks stopped mid-search), or "active".
  std::size_t prune_checks = 0;
  double prune_bound_ratio = 0.0;
  const char* prune_gate_reason = "off";
  // Enumeration cap observability: a capped search is NOT a full search.
  bool space_truncated = false;
  std::uint64_t space_skipped = 0;  // placement combinations never examined
  // Early-stop observability: the search returned best-so-far because the
  // deadline expired / the cancel token fired. `not_evaluated` counts
  // enumerated candidates that were never scored or pruned.
  bool deadline_hit = false;
  bool cancelled = false;
  std::size_t not_evaluated = 0;
  // --- Branch-and-bound / beam certification -------------------------------
  // Certified lower bound on the optimum over the FULL legal space (not just
  // the explored part) and the relative optimality gap
  // (predicted_cycles - lower_bound) / predicted_cycles. An exhaustive or
  // capped search leaves these 0; branch-and-bound always sets them (gap 0
  // with proven_optimal when it ran to completion), beam search certifies
  // against the root bound only.
  double lower_bound = 0.0;
  double optimality_gap = 0.0;
  bool proven_optimal = false;
  // Branch-and-bound tree observability.
  std::size_t nodes_expanded = 0;     // interior nodes whose children were built
  std::size_t pruned_subtrees = 0;    // subtrees cut by the admissible bound
  std::size_t incumbent_updates = 0;  // accepted incumbent improvements
  bool beam_fallback = false;  // node_budget exhausted -> beam refinement ran
};

// Scores every legal placement (up to options.cap) with the predictor.
// The predictor must already have a profiled sample (aborts otherwise;
// prefer try_search_exhaustive at API boundaries).
SearchResult search_exhaustive(const Predictor& predictor,
                               const SearchOptions& options = {});
SearchResult search_exhaustive(const Predictor& predictor, std::size_t cap);

// Non-aborting variant:
//   * FAILED_PRECONDITION when the predictor has no profiled sample,
//   * INVALID_ARGUMENT when the kernel admits no legal placement under the
//     cap (the aborting variant GPUHMS_CHECKs this),
//   * INTERNAL when a worker exception (e.g. an injected trace.lower or
//     pool.task fault) is captured by the thread pool and rethrown — the
//     pool remains usable afterwards.
// Deadline expiry / cancellation are NOT errors: they return OK with
// deadline_hit / cancelled set on the result.
StatusOr<SearchResult> try_search_exhaustive(const Predictor& predictor,
                                             const SearchOptions& options = {});

// Coordinate descent: sweep the arrays repeatedly, moving each to its best
// space with the others fixed, until a full sweep changes nothing (or
// max_sweeps is hit). Evaluates O(n_arrays x n_spaces x sweeps) placements.
SearchResult search_greedy(const Predictor& predictor, int max_sweeps = 4);

// Branch-and-bound over the FULL m^n legal space — `options.cap` is ignored;
// this is the search to reach for when the space outgrows the exhaustive
// enumeration cap. Arrays are assigned one at a time (highest addressing-
// cost spread first) and subtrees are cut with the admissible
// PlacementBounder lower bound, so the returned placement and score are
// bit-identical to search_exhaustive on any space the latter can enumerate
// uncapped — only cheaper. Anytime: a greedy per-array pass seeds a feasible
// incumbent before the tree walk, deadline/cancel stop the walk with
// best-so-far semantics, and the result always carries a certified
// lower_bound / optimality_gap (gap 0 + proven_optimal on completion).
// node_budget bounds the tree walk deterministically; exhausting it falls
// back to one beam pass (beam_fallback). Deterministic for any num_threads.
SearchResult search_branch_and_bound(const Predictor& predictor,
                                     const SearchOptions& options = {});

// Non-aborting variant; same error contract as try_search_exhaustive.
StatusOr<SearchResult> try_search_branch_and_bound(
    const Predictor& predictor, const SearchOptions& options = {});

// Deterministic beam search: assigns arrays level by level keeping the
// options.beam_width best partial assignments, each scored by a full
// prediction of the prefix completed with the sample placement (clamped to
// capacity). No admissibility requirement on the heuristic — the certificate
// is the (loose) root lower bound. O(n_arrays x beam_width x n_spaces)
// predictions; the fallback for spaces where branch-and-bound cannot prune.
SearchResult search_beam(const Predictor& predictor,
                         const SearchOptions& options = {});

// --- algorithm selection -----------------------------------------------------
// The search engines behind one switch, for surfaces that take the algorithm
// as data (placement_advisor's --search flag, the serve protocol's "algo"
// field). Parsing and dispatch both go through the Status layer so an
// unknown algorithm is a structured INVALID_ARGUMENT, never a silent
// fallback to some default engine.
enum class SearchAlgo { kExhaustive = 0, kBnb, kBeam };

// Stable lower-case names: "exhaustive", "bnb", "beam".
std::string_view to_string(SearchAlgo algo);

// Inverse of to_string; INVALID_ARGUMENT naming the token and listing the
// valid spellings on anything else.
StatusOr<SearchAlgo> parse_search_algo(std::string_view name);

// Dispatches to try_search_exhaustive / try_search_branch_and_bound /
// search_beam (the latter wrapped with the same error contract: a missing
// sample is FAILED_PRECONDITION, an escaping exception INTERNAL).
StatusOr<SearchResult> try_search(const Predictor& predictor, SearchAlgo algo,
                                  const SearchOptions& options = {});

struct OracleResult {
  DataPlacement best;
  std::uint64_t best_cycles = 0;
  DataPlacement worst;
  std::uint64_t worst_cycles = 0;
  std::size_t simulated = 0;
  bool space_truncated = false;
  std::uint64_t space_skipped = 0;
  // Early-stop observability (same semantics as SearchResult).
  bool deadline_hit = false;
  bool cancelled = false;
  std::size_t not_simulated = 0;
};

// Ground truth: simulate every legal placement (up to options.cap), spread
// over the thread pool. Expensive — for evaluation harnesses only.
// Honors SearchOptions::deadline / cancel with best-so-far semantics.
OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           const SearchOptions& options = {});
OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           std::size_t cap);

// Non-aborting variant: INVALID_ARGUMENT when the kernel/arch are malformed
// or admit no legal placement, INTERNAL when a worker exception escapes the
// simulator. Deadline/cancel return OK with the flags set.
StatusOr<OracleResult> try_search_oracle(const KernelInfo& kernel,
                                         const GpuArch& arch,
                                         const SearchOptions& options = {});

}  // namespace gpuhms
