#include "model/search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "common/check.hpp"
#include "common/obs.hpp"

namespace gpuhms {

namespace {

// Candidates are scored in fixed-size chunks; the prune threshold (best
// cycles so far) only advances between chunks, so which candidates get
// pruned does not depend on the thread count or scheduling — a requirement
// for bit-identical serial/parallel results. The chunk size is a constant
// for the same reason. Deadline/cancel checks also happen only at chunk
// boundaries, so an interrupted search's completed prefix is bit-identical
// to the same prefix of an uninterrupted run.
constexpr std::size_t kChunk = 64;

// Prune self-gating (exhaustive search). The per-candidate bound check is
// cheap (one table lookup per array + an O(1) floor) but not free, and on
// workloads where the bound never reaches the incumbent it is pure overhead
// — the BENCH_search regression this fixes. The gate is deterministic: it
// reads only serially-folded chunk data, so it closes at the same chunk
// boundary for every thread count.
//   kMinPruneSpace    below this many candidates the threshold barely
//                     advances before the search ends; skip checks entirely.
//   kPruneProbeChunks chunks of live checking granted before the gate may
//                     conclude the bound is hopeless.
//   kPruneRatioCutoff if after probing no candidate was pruned AND the bound
//                     never came within this fraction of the incumbent, stop
//                     checking (a ratio near 1 keeps probing: the bound may
//                     start firing once the incumbent improves).
constexpr std::size_t kMinPruneSpace = 2 * kChunk;
constexpr std::size_t kPruneProbeChunks = 4;
constexpr double kPruneRatioCutoff = 0.9;

// Chunk-boundary stop test shared by the exhaustive search and the oracle.
// Reads the cancel token first (a cancelled caller should see `cancelled`
// even when the deadline also expired).
struct StopWatch {
  explicit StopWatch(const SearchOptions& options)
      : cancel(options.cancel) {
    if (options.deadline)
      deadline_at = std::chrono::steady_clock::now() + *options.deadline;
  }

  // Sets exactly one of *cancelled / *deadline_hit when stopping.
  bool should_stop(bool* deadline_hit, bool* cancelled) const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      *cancelled = true;
      return true;
    }
    if (deadline_at &&
        std::chrono::steady_clock::now() >= *deadline_at) {
      *deadline_hit = true;
      return true;
    }
    return false;
  }

  const std::atomic<bool>* cancel = nullptr;
  std::optional<std::chrono::steady_clock::time_point> deadline_at;
};

// Search-outcome metrics shared by the exhaustive and oracle cores: tallies
// plus the deadline slack (wall-clock budget left when the search returned —
// 0 when the deadline was hit, untouched when no deadline was set).
void record_search_metrics(const StopWatch& watch, std::size_t evaluated,
                           std::size_t pruned, std::size_t not_evaluated,
                           bool deadline_hit, bool cancelled) {
  GPUHMS_COUNTER_ADD("search.searches", 1);
  GPUHMS_COUNTER_ADD("search.evaluated", evaluated);
  GPUHMS_COUNTER_ADD("search.pruned", pruned);
  GPUHMS_COUNTER_ADD("search.not_evaluated", not_evaluated);
  if (deadline_hit) GPUHMS_COUNTER_ADD("search.deadline_hits", 1);
  if (cancelled) GPUHMS_COUNTER_ADD("search.cancellations", 1);
  if (watch.deadline_at) {
    const auto slack = deadline_hit
                           ? std::chrono::steady_clock::duration::zero()
                           : *watch.deadline_at -
                                 std::chrono::steady_clock::now();
    GPUHMS_GAUGE_SET(
        "search.deadline_slack_ms",
        std::chrono::duration_cast<std::chrono::milliseconds>(slack).count());
  }
}

// Core of the exhaustive search over an already-enumerated, non-empty space.
// Exceptions from workers (captured and rethrown by ThreadPool) propagate to
// the caller; the try_ wrapper converts them to INTERNAL.
SearchResult exhaustive_over(const Predictor& predictor,
                             const SearchOptions& options,
                             const PlacementSpace& space) {
  GPUHMS_SCOPED_PHASE("search.exhaustive_ns");
  const KernelInfo& k = predictor.kernel();
  const StopWatch watch(options);

  ThreadPool local_pool(options.pool ? 1 : options.num_threads);
  ThreadPool& pool = options.pool ? *options.pool : local_pool;

  // One skeleton shared by every worker; one analyzer scratch per worker.
  std::shared_ptr<const TraceSkeleton> skeleton = predictor.skeleton();
  if (!skeleton && options.memoize_trace)
    skeleton = std::make_shared<TraceSkeleton>(k);
  std::vector<TraceAnalyzer> scratch;
  scratch.reserve(static_cast<std::size_t>(pool.size()));
  for (int t = 0; t < pool.size(); ++t)
    scratch.push_back(predictor.make_analyzer());

  SearchResult best;
  best.space_truncated = space.truncated;
  best.space_skipped = space.skipped_combinations;
  const std::size_t n = space.placements.size();
  constexpr double kPruned = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> cycles(std::min(n, kChunk));
  bool have_best = false;

  // Prune machinery: one immutable bounder shared by all workers; per-slot
  // bound records folded serially so counters and the gate are thread-count
  // independent.
  bool prune_active = false;
  PlacementBounder bounder;
  if (!options.prune) {
    best.prune_gate_reason = "off";
  } else if (!skeleton) {
    best.prune_gate_reason = "no-skeleton";
  } else if (n < kMinPruneSpace) {
    best.prune_gate_reason = "small-space";
  } else {
    bounder = predictor.make_bounder(*skeleton);
    best.prune_gate_reason = "active";
    prune_active = true;
  }
  const std::size_t num_arrays = k.arrays.size();
  constexpr double kNoCheck = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> bounds(cycles.size(), kNoCheck);
  double max_bound_seen = 0.0;
  std::size_t probed_chunks = 0;

  for (std::size_t c0 = 0; c0 < n; c0 += kChunk) {
    if (watch.should_stop(&best.deadline_hit, &best.cancelled)) {
      if (!have_best) {
        // Even an already-expired deadline returns a *scored* placement so
        // the caller can always compare or apply the result.
        best.placement = space.placements[0];
        best.predicted_cycles =
            predictor.predict_with(space.placements[0], &scratch[0],
                                   skeleton.get())
                .total_cycles;
        best.evaluated = 1;
        best.not_evaluated = n - 1;
      } else {
        best.not_evaluated = n - c0;
      }
      record_search_metrics(watch, best.evaluated, best.pruned,
                            best.not_evaluated, best.deadline_hit,
                            best.cancelled);
      return best;
    }
    const std::size_t c1 = std::min(n, c0 + kChunk);
    {
      GPUHMS_SCOPED_PHASE("search.chunk_ns");
      pool.parallel_for(c1 - c0, [&](int worker, std::size_t j) {
        const DataPlacement& p = space.placements[c0 + j];
        bounds[j] = kNoCheck;
        if (prune_active && have_best) {
          // O(arrays) table walk + O(1) floor — the whole point of building
          // the bounder once instead of re-deriving the bound per candidate.
          double addr = 0.0;
          for (std::size_t a = 0; a < num_arrays; ++a)
            addr += bounder.addr_insts(a, p.of(static_cast<int>(a)));
          const double bound = bounder.bound_cycles(addr);
          bounds[j] = bound;
          if (bound > best.predicted_cycles) {
            cycles[j] = kPruned;
            return;
          }
        }
        cycles[j] =
            predictor
                .predict_with(p, &scratch[static_cast<std::size_t>(worker)],
                              skeleton.get())
                .total_cycles;
      });
    }
    GPUHMS_COUNTER_ADD("search.chunks", 1);
    GPUHMS_HISTOGRAM_RECORD("search.chunk_candidates", c1 - c0);
    const bool chunk_checked = prune_active && have_best;
    for (std::size_t j = 0; j < c1 - c0; ++j) {
      if (!std::isnan(bounds[j])) {
        ++best.prune_checks;
        max_bound_seen = std::max(max_bound_seen, bounds[j]);
      }
      if (std::isnan(cycles[j])) {
        ++best.pruned;
        continue;
      }
      ++best.evaluated;
      if (!have_best || cycles[j] < best.predicted_cycles) {
        best.placement = space.placements[c0 + j];
        best.predicted_cycles = cycles[j];
        have_best = true;
      }
    }
    if (chunk_checked) {
      ++probed_chunks;
      best.prune_bound_ratio =
          best.predicted_cycles > 0.0 ? max_bound_seen / best.predicted_cycles
                                      : 0.0;
      if (best.pruned == 0 && probed_chunks >= kPruneProbeChunks &&
          best.prune_bound_ratio < kPruneRatioCutoff) {
        // The bound never came close; stop paying for checks that cannot
        // fire. (Deterministic: decided from serially-folded data at a chunk
        // boundary, identical for every thread count.)
        prune_active = false;
        best.prune_gate_reason = "gated-ineffective";
        GPUHMS_COUNTER_ADD("search.prune_gated", 1);
      }
    }
  }
  GPUHMS_COUNTER_ADD("search.prune_checks", best.prune_checks);
  GPUHMS_GAUGE_SET("search.prune_bound_ratio_bp",
                   static_cast<std::int64_t>(best.prune_bound_ratio * 1e4));
  record_search_metrics(watch, best.evaluated, best.pruned,
                        best.not_evaluated, best.deadline_hit,
                        best.cancelled);
  return best;
}

// Core of the oracle over an already-enumerated, non-empty space.
OracleResult oracle_over(const KernelInfo& kernel, const GpuArch& arch,
                         const SearchOptions& options,
                         const PlacementSpace& space) {
  GPUHMS_SCOPED_PHASE("search.oracle_ns");
  const StopWatch watch(options);

  ThreadPool local_pool(options.pool ? 1 : options.num_threads);
  ThreadPool& pool = options.pool ? *options.pool : local_pool;

  OracleResult r;
  r.space_truncated = space.truncated;
  r.space_skipped = space.skipped_combinations;
  const std::size_t n = space.placements.size();
  std::vector<std::uint64_t> cycles(std::min(n, kChunk));

  for (std::size_t c0 = 0; c0 < n; c0 += kChunk) {
    if (watch.should_stop(&r.deadline_hit, &r.cancelled)) {
      if (r.simulated == 0) {
        const std::uint64_t c = simulate(kernel, space.placements[0], arch).cycles;
        r.best = r.worst = space.placements[0];
        r.best_cycles = r.worst_cycles = c;
        r.simulated = 1;
        r.not_simulated = n - 1;
      } else {
        r.not_simulated = n - c0;
      }
      record_search_metrics(watch, r.simulated, 0, r.not_simulated,
                            r.deadline_hit, r.cancelled);
      return r;
    }
    const std::size_t c1 = std::min(n, c0 + kChunk);
    pool.parallel_for(c1 - c0, [&](int, std::size_t j) {
      cycles[j] = simulate(kernel, space.placements[c0 + j], arch).cycles;
    });
    for (std::size_t j = 0; j < c1 - c0; ++j) {
      const std::size_t i = c0 + j;
      ++r.simulated;
      if (i == 0 || cycles[j] < r.best_cycles) {
        r.best = space.placements[i];
        r.best_cycles = cycles[j];
      }
      if (i == 0 || cycles[j] > r.worst_cycles) {
        r.worst = space.placements[i];
        r.worst_cycles = cycles[j];
      }
    }
  }
  record_search_metrics(watch, r.simulated, 0, r.not_simulated,
                        r.deadline_hit, r.cancelled);
  return r;
}

// --- Branch-and-bound / beam ------------------------------------------------

// enumerate_placement_space's odometer increments array 0 fastest, so the
// enumeration index of a placement compares like a base-m number whose most
// significant digit is the LAST array (and the digit order within an array
// is the MemSpace enum value = kAllMemSpaces position). Exhaustive search
// breaks score ties by keeping the earliest-enumerated candidate; branch-
// and-bound visits candidates in a different order and must re-derive the
// same winner, so it breaks ties with this predicate explicitly.
bool enum_order_less(const DataPlacement& a, const DataPlacement& b) {
  for (std::size_t i = a.size(); i-- > 0;) {
    const int ai = static_cast<int>(a.of(static_cast<int>(i)));
    const int bi = static_cast<int>(b.of(static_cast<int>(i)));
    if (ai != bi) return ai < bi;
  }
  return false;
}

// The feasible best-so-far of an anytime search. `offer` applies the
// (score, enumeration order) rule that makes branch-and-bound agree with
// search_exhaustive bit-for-bit: lower predicted cycles win, exact score
// ties go to the placement that enumerates first.
struct Incumbent {
  DataPlacement placement;
  double cycles = std::numeric_limits<double>::infinity();
  bool valid = false;
  std::size_t updates = 0;

  bool offer(const DataPlacement& p, double c) {
    if (valid &&
        !(c < cycles || (c == cycles && enum_order_less(p, placement))))
      return false;
    placement = p;
    cycles = c;
    valid = true;
    ++updates;
    return true;
  }
};

// Shared evaluation context of the branch-and-bound and beam cores.
struct BnbContext {
  const Predictor* predictor = nullptr;
  const GpuArch* arch = nullptr;
  std::shared_ptr<const TraceSkeleton> skeleton;
  PlacementBounder bounder;
  ThreadPool* pool = nullptr;
  std::vector<TraceAnalyzer>* scratch = nullptr;
  // Tree level -> array index: arrays with the widest addressing-cost spread
  // are assigned first so wrong choices raise the bound as early as possible.
  std::vector<int> order;
};

BnbContext make_bnb_context(const Predictor& predictor, ThreadPool& pool,
                            std::vector<TraceAnalyzer>* scratch) {
  BnbContext ctx;
  ctx.predictor = &predictor;
  ctx.arch = &predictor.arch();
  ctx.skeleton = predictor.skeleton();
  if (!ctx.skeleton)
    ctx.skeleton = std::make_shared<TraceSkeleton>(predictor.kernel());
  ctx.bounder = predictor.make_bounder(*ctx.skeleton);
  ctx.pool = &pool;
  ctx.scratch = scratch;
  const std::size_t n = predictor.kernel().arrays.size();
  ctx.order.resize(n);
  std::vector<double> spread(n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    ctx.order[a] = static_cast<int>(a);
    for (MemSpace s : ctx.bounder.relaxed_spaces(a))
      spread[a] = std::max(spread[a], ctx.bounder.addr_insts(a, s) -
                                          ctx.bounder.min_addr_insts(a));
  }
  std::stable_sort(ctx.order.begin(), ctx.order.end(), [&](int x, int y) {
    return spread[static_cast<std::size_t>(x)] >
           spread[static_cast<std::size_t>(y)];
  });
  return ctx;
}

double eval_one(const BnbContext& ctx, const DataPlacement& p) {
  return ctx.predictor
      ->predict_with(p, &(*ctx.scratch)[0], ctx.skeleton.get())
      .total_cycles;
}

// Seeds the incumbent with one greedy coordinate-descent pass from the
// sample placement — the cheap feasible solution branch-and-bound prunes
// against from the very first node.
void greedy_seed(const BnbContext& ctx, Incumbent* inc,
                 std::size_t* evaluated) {
  const KernelInfo& k = ctx.predictor->kernel();
  DataPlacement cur = ctx.predictor->sample_placement();
  double cur_cycles = eval_one(ctx, cur);
  ++*evaluated;
  inc->offer(cur, cur_cycles);
  for (int array : ctx.order) {
    const auto a = static_cast<std::size_t>(array);
    for (MemSpace s : ctx.bounder.relaxed_spaces(a)) {
      if (s == cur.of(array)) continue;
      const DataPlacement candidate = cur.with(array, s);
      if (validate_placement(k, candidate, *ctx.arch)) continue;
      const double c = eval_one(ctx, candidate);
      ++*evaluated;
      if (c < cur_cycles ||
          (c == cur_cycles && enum_order_less(candidate, cur))) {
        cur = candidate;
        cur_cycles = c;
      }
    }
  }
  inc->offer(cur, cur_cycles);
}

// Completes a prefix of assignments (arrays order[0..depth)) with the sample
// placement where the capacity budgets allow it, Global otherwise — the
// deterministic rollout the beam heuristic scores.
DataPlacement complete_with_sample(const BnbContext& ctx,
                                   const DataPlacement& partial,
                                   std::size_t depth, std::size_t const_bytes,
                                   std::size_t shared_bytes) {
  const KernelInfo& k = ctx.predictor->kernel();
  const DataPlacement& sample = ctx.predictor->sample_placement();
  DataPlacement full = partial;
  for (std::size_t d = depth; d < ctx.order.size(); ++d) {
    const int array = ctx.order[d];
    const ArrayDecl& decl = k.arrays[static_cast<std::size_t>(array)];
    MemSpace s = sample.of(array);
    if (s == MemSpace::Constant &&
        const_bytes + decl.bytes() > ctx.arch->constant_capacity)
      s = MemSpace::Global;
    if (s == MemSpace::Shared &&
        shared_bytes + decl.shared_slice_bytes() > ctx.arch->shared_capacity)
      s = MemSpace::Global;
    if (s == MemSpace::Constant) const_bytes += decl.bytes();
    if (s == MemSpace::Shared) shared_bytes += decl.shared_slice_bytes();
    full.set(array, s);
  }
  return full;
}

// One child of a branch-and-bound tree node: array order[depth] pinned to
// `space`, with the node's absolute addressing total, capacity prefix sums
// and admissible bound.
struct BnbChild {
  MemSpace space = MemSpace::Global;
  double bound = 0.0;
  double addr_total = 0.0;
  std::size_t const_bytes = 0;
  std::size_t shared_bytes = 0;
};

struct BnbFrame {
  std::vector<BnbChild> children;
  std::size_t next = 0;
};

// Builds the children of the node (depth, addr_total, capacity sums), best
// bound first (space enum order on ties — any deterministic order works;
// correctness only needs the strict-inequality prune below). Children whose
// capacity prefix cannot be completed are infeasible, not pruned: a prefix
// extends to a legal placement iff its own sums fit, because the all-Global
// completion adds nothing.
void build_children(const BnbContext& ctx, std::size_t depth,
                    double addr_total, std::size_t const_bytes,
                    std::size_t shared_bytes, BnbFrame* frame) {
  const KernelInfo& k = ctx.predictor->kernel();
  const int array = ctx.order[depth];
  const auto a = static_cast<std::size_t>(array);
  const ArrayDecl& decl = k.arrays[a];
  frame->children.clear();
  frame->next = 0;
  for (MemSpace s : ctx.bounder.relaxed_spaces(a)) {
    BnbChild c;
    c.space = s;
    c.const_bytes =
        const_bytes + (s == MemSpace::Constant ? decl.bytes() : 0);
    c.shared_bytes =
        shared_bytes + (s == MemSpace::Shared ? decl.shared_slice_bytes() : 0);
    if (c.const_bytes > ctx.arch->constant_capacity ||
        c.shared_bytes > ctx.arch->shared_capacity)
      continue;
    c.addr_total = addr_total - ctx.bounder.min_addr_insts(a) +
                   ctx.bounder.addr_insts(a, s);
    c.bound = ctx.bounder.bound_cycles(c.addr_total);
    frame->children.push_back(c);
  }
  std::sort(frame->children.begin(), frame->children.end(),
            [](const BnbChild& x, const BnbChild& y) {
              if (x.bound != y.bound) return x.bound < y.bound;
              return static_cast<int>(x.space) < static_cast<int>(y.space);
            });
}

// Captures the live walk state at a visit boundary — everything bnb_over
// needs to continue from exactly this point. Inverse of restore_bnb_state.
BnbCheckpoint snapshot_bnb_state(const Incumbent& inc, const SearchResult& res,
                                 const std::vector<BnbFrame>& stack,
                                 const std::vector<DataPlacement>& pending,
                                 std::size_t visits) {
  BnbCheckpoint cp;
  cp.incumbent_valid = inc.valid;
  if (inc.valid) {
    cp.incumbent.reserve(inc.placement.size());
    for (std::size_t a = 0; a < inc.placement.size(); ++a)
      cp.incumbent.push_back(inc.placement.of(static_cast<int>(a)));
    std::memcpy(&cp.incumbent_cycles_bits, &inc.cycles,
                sizeof cp.incumbent_cycles_bits);
  }
  cp.incumbent_updates = inc.updates;
  cp.evaluated = res.evaluated;
  cp.nodes_expanded = res.nodes_expanded;
  cp.pruned_subtrees = res.pruned_subtrees;
  cp.visits = visits;
  cp.stack_next.reserve(stack.size());
  for (const BnbFrame& f : stack)
    cp.stack_next.push_back(static_cast<std::uint32_t>(f.next));
  cp.pending.reserve(pending.size());
  for (const DataPlacement& p : pending) {
    std::vector<MemSpace> spaces;
    spaces.reserve(p.size());
    for (std::size_t a = 0; a < p.size(); ++a)
      spaces.push_back(p.of(static_cast<int>(a)));
    cp.pending.push_back(std::move(spaces));
  }
  return cp;
}

// Rebuilds the DFS walk from a checkpoint. Child lists replay from
// build_children (deterministic), so only the per-frame consumed-child
// counts are needed: while a frame below depth d exists, stack[d] is not the
// top of the stack and its `next` cannot have advanced since the descent —
// hence children[next - 1] IS the child the walk descended into, giving the
// path placement and the (addr_total, capacity) sums for the next level.
// Throws CheckpointMismatch when the snapshot cannot belong to this search.
void restore_bnb_state(const BnbContext& ctx, const BnbCheckpoint& cp,
                       Incumbent* inc, SearchResult* res,
                       std::vector<BnbFrame>* stack,
                       std::vector<DataPlacement>* pending, DataPlacement* cur,
                       std::size_t* visits) {
  const std::size_t n = ctx.predictor->kernel().arrays.size();
  if (cp.stack_next.empty() || cp.stack_next.size() > n)
    throw CheckpointMismatch("checkpoint stack depth " +
                             std::to_string(cp.stack_next.size()) +
                             " does not fit a " + std::to_string(n) +
                             "-array kernel");
  if (cp.incumbent_valid && cp.incumbent.size() != n)
    throw CheckpointMismatch("checkpoint incumbent has " +
                             std::to_string(cp.incumbent.size()) +
                             " arrays, kernel has " + std::to_string(n));
  for (const auto& p : cp.pending)
    if (p.size() != n)
      throw CheckpointMismatch("checkpoint pending leaf has " +
                               std::to_string(p.size()) +
                               " arrays, kernel has " + std::to_string(n));

  if (cp.incumbent_valid) {
    inc->placement = DataPlacement(cp.incumbent);
    std::memcpy(&inc->cycles, &cp.incumbent_cycles_bits, sizeof inc->cycles);
    inc->valid = true;
  }
  inc->updates = cp.incumbent_updates;
  res->evaluated = cp.evaluated;
  res->nodes_expanded = cp.nodes_expanded;
  res->pruned_subtrees = cp.pruned_subtrees;
  *visits = cp.visits;
  pending->clear();
  pending->reserve(cp.pending.size());
  for (const auto& spaces : cp.pending)
    pending->push_back(DataPlacement(spaces));

  stack->clear();
  stack->resize(cp.stack_next.size());
  double addr = ctx.bounder.root_addr_insts();
  std::size_t const_bytes = 0, shared_bytes = 0;
  for (std::size_t d = 0; d < cp.stack_next.size(); ++d) {
    build_children(ctx, d, addr, const_bytes, shared_bytes, &(*stack)[d]);
    BnbFrame& f = (*stack)[d];
    if (cp.stack_next[d] > f.children.size())
      throw CheckpointMismatch(
          "checkpoint frame " + std::to_string(d) + " consumed " +
          std::to_string(cp.stack_next[d]) + " of " +
          std::to_string(f.children.size()) + " children");
    f.next = cp.stack_next[d];
    if (d + 1 < cp.stack_next.size()) {
      if (f.next == 0)
        throw CheckpointMismatch("checkpoint frame " + std::to_string(d) +
                                 " has a descendant but no consumed child");
      const BnbChild& taken = f.children[f.next - 1];
      cur->set(ctx.order[d], taken.space);
      addr = taken.addr_total;
      const_bytes = taken.const_bytes;
      shared_bytes = taken.shared_bytes;
    }
  }
}

// Evaluates the buffered leaves over the pool and folds them serially in
// DFS order — per-slot writes plus an ordered fold keep the incumbent (and
// hence all later pruning) identical for every thread count.
void flush_leaves(const BnbContext& ctx,
                  std::vector<DataPlacement>* pending_placements,
                  Incumbent* inc, SearchResult* res) {
  if (pending_placements->empty()) return;
  GPUHMS_SCOPED_PHASE("search.chunk_ns");
  std::vector<double> cycles(pending_placements->size());
  ctx.pool->parallel_for(
      pending_placements->size(), [&](int worker, std::size_t j) {
        cycles[j] = ctx.predictor
                        ->predict_with(
                            (*pending_placements)[j],
                            &(*ctx.scratch)[static_cast<std::size_t>(worker)],
                            ctx.skeleton.get())
                        .total_cycles;
      });
  GPUHMS_COUNTER_ADD("search.chunks", 1);
  GPUHMS_HISTOGRAM_RECORD("search.chunk_candidates",
                          pending_placements->size());
  res->evaluated += pending_placements->size();
  for (std::size_t j = 0; j < pending_placements->size(); ++j)
    inc->offer((*pending_placements)[j], cycles[j]);
  pending_placements->clear();
}

// Beam core over an already-built context. Shares the incumbent with the
// caller (the bnb fallback passes its own), honors the stop watch between
// levels, and returns the number of full evaluations performed.
std::size_t beam_core(const BnbContext& ctx, const SearchOptions& options,
                      const StopWatch& watch, Incumbent* inc,
                      bool* deadline_hit, bool* cancelled) {
  const KernelInfo& k = ctx.predictor->kernel();
  const std::size_t n = k.arrays.size();
  const std::size_t width = std::max<std::size_t>(1, options.beam_width);
  std::size_t evaluated = 0;

  struct BeamNode {
    DataPlacement partial;       // arrays order[0..depth) pinned
    DataPlacement completion;    // scored rollout of the prefix
    double cycles = 0.0;
    std::size_t const_bytes = 0;
    std::size_t shared_bytes = 0;
  };
  std::vector<BeamNode> beam(1);
  beam[0].partial =
      DataPlacement(std::vector<MemSpace>(n, MemSpace::Global));

  for (std::size_t depth = 0; depth < n; ++depth) {
    if (watch.should_stop(deadline_hit, cancelled)) return evaluated;
    const int array = ctx.order[depth];
    const auto a = static_cast<std::size_t>(array);
    const ArrayDecl& decl = k.arrays[a];
    std::vector<BeamNode> candidates;
    for (const BeamNode& node : beam) {
      for (MemSpace s : ctx.bounder.relaxed_spaces(a)) {
        BeamNode c;
        c.const_bytes = node.const_bytes +
                        (s == MemSpace::Constant ? decl.bytes() : 0);
        c.shared_bytes =
            node.shared_bytes +
            (s == MemSpace::Shared ? decl.shared_slice_bytes() : 0);
        if (c.const_bytes > ctx.arch->constant_capacity ||
            c.shared_bytes > ctx.arch->shared_capacity)
          continue;
        c.partial = node.partial.with(array, s);
        c.completion = complete_with_sample(ctx, c.partial, depth + 1,
                                            c.const_bytes, c.shared_bytes);
        candidates.push_back(std::move(c));
      }
    }
    ctx.pool->parallel_for(candidates.size(), [&](int worker, std::size_t j) {
      candidates[j].cycles =
          ctx.predictor
              ->predict_with(candidates[j].completion,
                             &(*ctx.scratch)[static_cast<std::size_t>(worker)],
                             ctx.skeleton.get())
              .total_cycles;
    });
    evaluated += candidates.size();
    for (const BeamNode& c : candidates) inc->offer(c.completion, c.cycles);
    std::sort(candidates.begin(), candidates.end(),
              [](const BeamNode& x, const BeamNode& y) {
                if (x.cycles != y.cycles) return x.cycles < y.cycles;
                return enum_order_less(x.completion, y.completion);
              });
    if (candidates.size() > width) candidates.resize(width);
    beam = std::move(candidates);
    if (beam.empty()) break;  // unreachable: all-Global always extends
  }
  return evaluated;
}

// Branch-and-bound core: depth-first over the assignment tree, best child
// first, pruning on strictly-greater bounds (ties survive so the
// enumeration-order tie-break stays exact), leaves batch-evaluated in
// kChunk buffers. Anytime: the incumbent is feasible from the greedy seed
// onwards, and on any early stop the frontier bounds certify the gap.
SearchResult bnb_over(const Predictor& predictor,
                      const SearchOptions& options) {
  GPUHMS_SCOPED_PHASE("search.bnb_ns");
  const KernelInfo& k = predictor.kernel();
  const StopWatch watch(options);

  ThreadPool local_pool(options.pool ? 1 : options.num_threads);
  ThreadPool& pool = options.pool ? *options.pool : local_pool;
  std::vector<TraceAnalyzer> scratch;
  scratch.reserve(static_cast<std::size_t>(pool.size()));
  for (int t = 0; t < pool.size(); ++t)
    scratch.push_back(predictor.make_analyzer());

  BnbContext ctx = make_bnb_context(predictor, pool, &scratch);
  GPUHMS_CHECK_MSG(!ctx.bounder.infeasible(),
                   "kernel admits no legal placement");
  const std::size_t n = k.arrays.size();

  SearchResult res;
  Incumbent inc;

  std::vector<BnbFrame> stack;
  std::vector<DataPlacement> pending;  // leaf buffer, flushed per kChunk
  DataPlacement cur(std::vector<MemSpace>(n, MemSpace::Global));
  std::size_t visits = 0;  // stop-watch cadence (every kChunk node visits)
  bool stopped = false;

  // Checkpointing: snapshots are taken between node visits, where the
  // (stack, pending, incumbent, counters) tuple fully determines the rest of
  // the walk — emission reads state but never changes it, so a journaled run
  // is bit-identical to a plain one.
  BnbCheckpointSink* sink = options.checkpoint_sink;
  const std::size_t checkpoint_interval =
      std::max<std::size_t>(1, options.checkpoint_interval);
  std::size_t last_checkpoint = 0;  // visits value of the last emission

  const bool resumed = options.resume_from != nullptr && n > 0;
  if (resumed) {
    // Restore instead of seeding: the snapshot already carries the incumbent
    // the greedy seed (and the walk so far) produced.
    restore_bnb_state(ctx, *options.resume_from, &inc, &res, &stack, &pending,
                      &cur, &visits);
    last_checkpoint = visits;
    GPUHMS_COUNTER_ADD("search.bnb_resumes", 1);
  } else {
    // A feasible incumbent before the first tree node: the sample placement
    // is scored even when the deadline already expired at entry (same
    // contract as exhaustive search's first candidate).
    greedy_seed(ctx, &inc, &res.evaluated);
  }

  // An already-expired deadline / pre-fired cancel token skips the walk
  // entirely but must still read as a stop: the incumbent stands (and, on a
  // resume, so do the restored frontier bounds), but nothing new was proven
  // about the rest of the space.
  if (n > 0 && watch.should_stop(&res.deadline_hit, &res.cancelled)) {
    stopped = true;
  } else if (n > 0) {
    if (!resumed) {
      stack.emplace_back();
      build_children(ctx, 0, ctx.bounder.root_addr_insts(), 0, 0,
                     &stack.back());
    }
    while (!stack.empty()) {
      if (sink != nullptr && visits != last_checkpoint &&
          visits % checkpoint_interval == 0) {
        sink->on_checkpoint(
            snapshot_bnb_state(inc, res, stack, pending, visits));
        last_checkpoint = visits;
      }
      if (++visits % kChunk == 0 &&
          watch.should_stop(&res.deadline_hit, &res.cancelled)) {
        // One final snapshot at the stop point so a resume continues from
        // here rather than replaying since the last periodic checkpoint.
        // (The pending buffer is snapshotted un-flushed: the flush below
        // only improves THIS run's returned incumbent; the resumed run
        // re-evaluates those leaves itself, keeping its counters identical
        // to an uninterrupted run's.)
        if (sink != nullptr)
          sink->on_checkpoint(
              snapshot_bnb_state(inc, res, stack, pending, visits));
        stopped = true;
        break;
      }
      if (options.node_budget != 0 &&
          res.nodes_expanded >= options.node_budget) {
        stopped = true;
        res.beam_fallback = true;
        break;
      }
      BnbFrame& frame = stack.back();
      if (frame.next >= frame.children.size()) {
        stack.pop_back();
        continue;
      }
      const std::size_t depth = stack.size() - 1;
      const BnbChild child = frame.children[frame.next++];
      if (child.bound > inc.cycles) {
        // Admissible bound: every completion of this subtree predicts
        // >= child.bound > incumbent, so it cannot even tie.
        ++res.pruned_subtrees;
        continue;
      }
      cur.set(ctx.order[depth], child.space);
      if (depth + 1 == n) {
        pending.push_back(cur);
        if (pending.size() >= kChunk) flush_leaves(ctx, &pending, &inc, &res);
        continue;
      }
      ++res.nodes_expanded;
      stack.emplace_back();
      build_children(ctx, depth + 1, child.addr_total, child.const_bytes,
                     child.shared_bytes, &stack[stack.size() - 1]);
    }
  }
  // The final partial chunk (or, on an early stop, the buffered leaves —
  // one chunk of work at most, the same granularity exhaustive search
  // stops at).
  flush_leaves(ctx, &pending, &inc, &res);

  if (stopped && res.beam_fallback) {
    // Bound too loose to prune within the node budget: refine the incumbent
    // with one deterministic beam pass. The certificate below still comes
    // from the abandoned frontier.
    res.evaluated += beam_core(ctx, options, watch, &inc, &res.deadline_hit,
                               &res.cancelled);
  }

  // Certification: everything unexplored lives under a frontier child (or a
  // pruned subtree, whose bound exceeded an incumbent value >= the final
  // one), so min(incumbent, frontier bounds) lower-bounds the optimum over
  // the FULL legal space.
  double lb = inc.cycles;
  if (stopped && stack.empty()) {
    // Stopped before the root was even expanded (pre-expired deadline or
    // pre-fired cancel): the entire space is unexplored and the only honest
    // certificate is the root bound.
    lb = std::min(lb, ctx.bounder.bound_cycles(ctx.bounder.root_addr_insts()));
  }
  for (const BnbFrame& f : stack)
    for (std::size_t j = f.next; j < f.children.size(); ++j)
      lb = std::min(lb, f.children[j].bound);
  res.placement = inc.placement;
  res.predicted_cycles = inc.cycles;
  res.incumbent_updates = inc.updates;
  res.lower_bound = lb;
  res.optimality_gap =
      inc.cycles > 0.0 ? (inc.cycles - lb) / inc.cycles : 0.0;
  res.proven_optimal = !stopped;

  GPUHMS_COUNTER_ADD("search.bnb_searches", 1);
  GPUHMS_COUNTER_ADD("search.bnb_nodes_expanded", res.nodes_expanded);
  GPUHMS_COUNTER_ADD("search.bnb_pruned_subtrees", res.pruned_subtrees);
  GPUHMS_COUNTER_ADD("search.bnb_incumbent_updates", res.incumbent_updates);
  if (res.beam_fallback) GPUHMS_COUNTER_ADD("search.bnb_beam_fallbacks", 1);
  GPUHMS_GAUGE_SET("search.bnb_gap_bp",
                   static_cast<std::int64_t>(res.optimality_gap * 1e4));
  record_search_metrics(watch, res.evaluated, res.pruned_subtrees, 0,
                        res.deadline_hit, res.cancelled);
  return res;
}

}  // namespace

SearchResult search_exhaustive(const Predictor& predictor, std::size_t cap) {
  SearchOptions o;
  o.cap = cap;
  return search_exhaustive(predictor, o);
}

SearchResult search_exhaustive(const Predictor& predictor,
                               const SearchOptions& options) {
  const KernelInfo& k = predictor.kernel();
  const GpuArch& arch = predictor.arch();
  const PlacementSpace space = enumerate_placement_space(k, arch, options.cap);
  GPUHMS_CHECK(!space.placements.empty());
  return exhaustive_over(predictor, options, space);
}

StatusOr<SearchResult> try_search_exhaustive(const Predictor& predictor,
                                             const SearchOptions& options) {
  const KernelInfo& k = predictor.kernel();
  const std::string ctx = "searching placements of kernel '" + k.name + "'";
  if (!predictor.has_sample())
    return FailedPreconditionError(
               "predictor has no profiled sample; call try_profile_sample or "
               "try_set_sample first")
        .annotate(ctx);
  const GpuArch& arch = predictor.arch();
  const PlacementSpace space = enumerate_placement_space(k, arch, options.cap);
  if (space.placements.empty())
    return InvalidArgumentError(
               "kernel '" + k.name + "' admits no legal placement under cap " +
               std::to_string(options.cap))
        .annotate(ctx);
  try {
    return exhaustive_over(predictor, options, space);
  } catch (const std::exception& e) {
    return InternalError(e.what()).annotate(ctx);
  }
}

SearchResult search_greedy(const Predictor& predictor, int max_sweeps) {
  const KernelInfo& k = predictor.kernel();
  const GpuArch& arch = predictor.arch();
  SearchResult r;
  r.placement = predictor.sample_placement();
  r.predicted_cycles = predictor.predict(r.placement).total_cycles;
  ++r.evaluated;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool changed = false;
    for (std::size_t a = 0; a < k.arrays.size(); ++a) {
      const int array = static_cast<int>(a);
      for (MemSpace s : kAllMemSpaces) {
        if (s == r.placement.of(array)) continue;
        const DataPlacement candidate = r.placement.with(array, s);
        if (validate_placement(k, candidate, arch)) continue;
        const double cycles = predictor.predict(candidate).total_cycles;
        ++r.evaluated;
        if (cycles < r.predicted_cycles) {
          r.placement = candidate;
          r.predicted_cycles = cycles;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return r;
}

SearchResult search_branch_and_bound(const Predictor& predictor,
                                     const SearchOptions& options) {
  return bnb_over(predictor, options);
}

StatusOr<SearchResult> try_search_branch_and_bound(
    const Predictor& predictor, const SearchOptions& options) {
  const KernelInfo& k = predictor.kernel();
  const std::string ctx =
      "branch-and-bound searching placements of kernel '" + k.name + "'";
  if (!predictor.has_sample())
    return FailedPreconditionError(
               "predictor has no profiled sample; call try_profile_sample or "
               "try_set_sample first")
        .annotate(ctx);
  try {
    return bnb_over(predictor, options);
  } catch (const CheckpointMismatch& e) {
    return InvalidArgumentError(e.what()).annotate(ctx);
  } catch (const std::exception& e) {
    return InternalError(e.what()).annotate(ctx);
  }
}

SearchResult search_beam(const Predictor& predictor,
                         const SearchOptions& options) {
  GPUHMS_SCOPED_PHASE("search.beam_ns");
  const StopWatch watch(options);
  ThreadPool local_pool(options.pool ? 1 : options.num_threads);
  ThreadPool& pool = options.pool ? *options.pool : local_pool;
  std::vector<TraceAnalyzer> scratch;
  scratch.reserve(static_cast<std::size_t>(pool.size()));
  for (int t = 0; t < pool.size(); ++t)
    scratch.push_back(predictor.make_analyzer());

  BnbContext ctx = make_bnb_context(predictor, pool, &scratch);
  GPUHMS_CHECK_MSG(!ctx.bounder.infeasible(),
                   "kernel admits no legal placement");

  SearchResult res;
  Incumbent inc;
  greedy_seed(ctx, &inc, &res.evaluated);
  res.evaluated += beam_core(ctx, options, watch, &inc, &res.deadline_hit,
                             &res.cancelled);

  res.placement = inc.placement;
  res.predicted_cycles = inc.cycles;
  res.incumbent_updates = inc.updates;
  // The only certificate a heuristic beam can give: the root bound over the
  // whole space. Loose, but >= 0 and sound.
  res.lower_bound =
      ctx.bounder.bound_cycles(ctx.bounder.root_addr_insts());
  res.optimality_gap =
      inc.cycles > 0.0 ? (inc.cycles - res.lower_bound) / inc.cycles : 0.0;
  record_search_metrics(watch, res.evaluated, 0, 0, res.deadline_hit,
                        res.cancelled);
  return res;
}

std::string_view to_string(SearchAlgo algo) {
  switch (algo) {
    case SearchAlgo::kExhaustive: return "exhaustive";
    case SearchAlgo::kBnb: return "bnb";
    case SearchAlgo::kBeam: return "beam";
  }
  return "?";
}

StatusOr<SearchAlgo> parse_search_algo(std::string_view name) {
  if (name == "exhaustive") return SearchAlgo::kExhaustive;
  if (name == "bnb") return SearchAlgo::kBnb;
  if (name == "beam") return SearchAlgo::kBeam;
  return InvalidArgumentError("unknown search algorithm '" +
                              std::string(name) +
                              "': expected bnb, exhaustive, or beam");
}

StatusOr<SearchResult> try_search(const Predictor& predictor, SearchAlgo algo,
                                  const SearchOptions& options) {
  switch (algo) {
    case SearchAlgo::kExhaustive:
      return try_search_exhaustive(predictor, options);
    case SearchAlgo::kBnb:
      return try_search_branch_and_bound(predictor, options);
    case SearchAlgo::kBeam: {
      const std::string ctx = "beam-searching placements of kernel '" +
                              predictor.kernel().name + "'";
      if (!predictor.has_sample())
        return FailedPreconditionError(
                   "predictor has no profiled sample; call try_profile_sample "
                   "or try_set_sample first")
            .annotate(ctx);
      try {
        return search_beam(predictor, options);
      } catch (const std::exception& e) {
        return InternalError(e.what()).annotate(ctx);
      }
    }
  }
  return InvalidArgumentError("unknown SearchAlgo value " +
                              std::to_string(static_cast<int>(algo)));
}

OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           std::size_t cap) {
  SearchOptions o;
  o.cap = cap;
  return search_oracle(kernel, arch, o);
}

OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           const SearchOptions& options) {
  const PlacementSpace space =
      enumerate_placement_space(kernel, arch, options.cap);
  GPUHMS_CHECK(!space.placements.empty());
  return oracle_over(kernel, arch, options, space);
}

StatusOr<OracleResult> try_search_oracle(const KernelInfo& kernel,
                                         const GpuArch& arch,
                                         const SearchOptions& options) {
  const std::string ctx =
      "oracle-searching placements of kernel '" + kernel.name + "'";
  GPUHMS_RETURN_IF_ERROR(validate(kernel).annotate(ctx));
  GPUHMS_RETURN_IF_ERROR(validate(arch).annotate(ctx));
  const PlacementSpace space =
      enumerate_placement_space(kernel, arch, options.cap);
  if (space.placements.empty())
    return InvalidArgumentError(
               "kernel '" + kernel.name +
               "' admits no legal placement under cap " +
               std::to_string(options.cap))
        .annotate(ctx);
  try {
    return oracle_over(kernel, arch, options, space);
  } catch (const std::exception& e) {
    return InternalError(e.what()).annotate(ctx);
  }
}

}  // namespace gpuhms
