#include "model/search.hpp"

#include "common/check.hpp"

namespace gpuhms {

SearchResult search_exhaustive(const Predictor& predictor, std::size_t cap) {
  const KernelInfo& k = predictor.kernel();
  const GpuArch& arch = kepler_arch();
  const auto space = enumerate_placements(k, arch, cap);
  GPUHMS_CHECK(!space.empty());
  SearchResult best;
  for (const auto& p : space) {
    const double cycles = predictor.predict(p).total_cycles;
    ++best.evaluated;
    if (best.evaluated == 1 || cycles < best.predicted_cycles) {
      best.placement = p;
      best.predicted_cycles = cycles;
    }
  }
  return best;
}

SearchResult search_greedy(const Predictor& predictor, int max_sweeps) {
  const KernelInfo& k = predictor.kernel();
  const GpuArch& arch = kepler_arch();
  SearchResult r;
  r.placement = predictor.sample_placement();
  r.predicted_cycles = predictor.predict(r.placement).total_cycles;
  ++r.evaluated;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool changed = false;
    for (std::size_t a = 0; a < k.arrays.size(); ++a) {
      const int array = static_cast<int>(a);
      for (MemSpace s : kAllMemSpaces) {
        if (s == r.placement.of(array)) continue;
        const DataPlacement candidate = r.placement.with(array, s);
        if (validate_placement(k, candidate, arch)) continue;
        const double cycles = predictor.predict(candidate).total_cycles;
        ++r.evaluated;
        if (cycles < r.predicted_cycles) {
          r.placement = candidate;
          r.predicted_cycles = cycles;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return r;
}

OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           std::size_t cap) {
  const auto space = enumerate_placements(kernel, arch, cap);
  GPUHMS_CHECK(!space.empty());
  OracleResult r;
  for (const auto& p : space) {
    const std::uint64_t cycles = simulate(kernel, p, arch).cycles;
    ++r.simulated;
    if (r.simulated == 1 || cycles < r.best_cycles) {
      r.best = p;
      r.best_cycles = cycles;
    }
    if (r.simulated == 1 || cycles > r.worst_cycles) {
      r.worst = p;
      r.worst_cycles = cycles;
    }
  }
  return r;
}

}  // namespace gpuhms
