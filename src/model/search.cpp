#include "model/search.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.hpp"
#include "common/obs.hpp"

namespace gpuhms {

namespace {

// Candidates are scored in fixed-size chunks; the prune threshold (best
// cycles so far) only advances between chunks, so which candidates get
// pruned does not depend on the thread count or scheduling — a requirement
// for bit-identical serial/parallel results. The chunk size is a constant
// for the same reason. Deadline/cancel checks also happen only at chunk
// boundaries, so an interrupted search's completed prefix is bit-identical
// to the same prefix of an uninterrupted run.
constexpr std::size_t kChunk = 64;

// Chunk-boundary stop test shared by the exhaustive search and the oracle.
// Reads the cancel token first (a cancelled caller should see `cancelled`
// even when the deadline also expired).
struct StopWatch {
  explicit StopWatch(const SearchOptions& options)
      : cancel(options.cancel) {
    if (options.deadline)
      deadline_at = std::chrono::steady_clock::now() + *options.deadline;
  }

  // Sets exactly one of *cancelled / *deadline_hit when stopping.
  bool should_stop(bool* deadline_hit, bool* cancelled) const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      *cancelled = true;
      return true;
    }
    if (deadline_at &&
        std::chrono::steady_clock::now() >= *deadline_at) {
      *deadline_hit = true;
      return true;
    }
    return false;
  }

  const std::atomic<bool>* cancel = nullptr;
  std::optional<std::chrono::steady_clock::time_point> deadline_at;
};

// Search-outcome metrics shared by the exhaustive and oracle cores: tallies
// plus the deadline slack (wall-clock budget left when the search returned —
// 0 when the deadline was hit, untouched when no deadline was set).
void record_search_metrics(const StopWatch& watch, std::size_t evaluated,
                           std::size_t pruned, std::size_t not_evaluated,
                           bool deadline_hit, bool cancelled) {
  GPUHMS_COUNTER_ADD("search.searches", 1);
  GPUHMS_COUNTER_ADD("search.evaluated", evaluated);
  GPUHMS_COUNTER_ADD("search.pruned", pruned);
  GPUHMS_COUNTER_ADD("search.not_evaluated", not_evaluated);
  if (deadline_hit) GPUHMS_COUNTER_ADD("search.deadline_hits", 1);
  if (cancelled) GPUHMS_COUNTER_ADD("search.cancellations", 1);
  if (watch.deadline_at) {
    const auto slack = deadline_hit
                           ? std::chrono::steady_clock::duration::zero()
                           : *watch.deadline_at -
                                 std::chrono::steady_clock::now();
    GPUHMS_GAUGE_SET(
        "search.deadline_slack_ms",
        std::chrono::duration_cast<std::chrono::milliseconds>(slack).count());
  }
}

// Core of the exhaustive search over an already-enumerated, non-empty space.
// Exceptions from workers (captured and rethrown by ThreadPool) propagate to
// the caller; the try_ wrapper converts them to INTERNAL.
SearchResult exhaustive_over(const Predictor& predictor,
                             const SearchOptions& options,
                             const PlacementSpace& space) {
  GPUHMS_SCOPED_PHASE("search.exhaustive_ns");
  const KernelInfo& k = predictor.kernel();
  const StopWatch watch(options);

  ThreadPool local_pool(options.pool ? 1 : options.num_threads);
  ThreadPool& pool = options.pool ? *options.pool : local_pool;

  // One skeleton shared by every worker; one analyzer scratch per worker.
  std::shared_ptr<const TraceSkeleton> skeleton = predictor.skeleton();
  if (!skeleton && options.memoize_trace)
    skeleton = std::make_shared<TraceSkeleton>(k);
  std::vector<TraceAnalyzer> scratch;
  scratch.reserve(static_cast<std::size_t>(pool.size()));
  for (int t = 0; t < pool.size(); ++t)
    scratch.push_back(predictor.make_analyzer());

  SearchResult best;
  best.space_truncated = space.truncated;
  best.space_skipped = space.skipped_combinations;
  const std::size_t n = space.placements.size();
  constexpr double kPruned = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> cycles(std::min(n, kChunk));
  bool have_best = false;

  for (std::size_t c0 = 0; c0 < n; c0 += kChunk) {
    if (watch.should_stop(&best.deadline_hit, &best.cancelled)) {
      if (!have_best) {
        // Even an already-expired deadline returns a *scored* placement so
        // the caller can always compare or apply the result.
        best.placement = space.placements[0];
        best.predicted_cycles =
            predictor.predict_with(space.placements[0], &scratch[0],
                                   skeleton.get())
                .total_cycles;
        best.evaluated = 1;
        best.not_evaluated = n - 1;
      } else {
        best.not_evaluated = n - c0;
      }
      record_search_metrics(watch, best.evaluated, best.pruned,
                            best.not_evaluated, best.deadline_hit,
                            best.cancelled);
      return best;
    }
    const std::size_t c1 = std::min(n, c0 + kChunk);
    {
      GPUHMS_SCOPED_PHASE("search.chunk_ns");
      pool.parallel_for(c1 - c0, [&](int worker, std::size_t j) {
        const DataPlacement& p = space.placements[c0 + j];
        if (options.prune && have_best && skeleton &&
            predictor.lower_bound_cycles(p, *skeleton) >
                best.predicted_cycles) {
          cycles[j] = kPruned;
          return;
        }
        cycles[j] =
            predictor
                .predict_with(p, &scratch[static_cast<std::size_t>(worker)],
                              skeleton.get())
                .total_cycles;
      });
    }
    GPUHMS_COUNTER_ADD("search.chunks", 1);
    GPUHMS_HISTOGRAM_RECORD("search.chunk_candidates", c1 - c0);
    for (std::size_t j = 0; j < c1 - c0; ++j) {
      if (std::isnan(cycles[j])) {
        ++best.pruned;
        continue;
      }
      ++best.evaluated;
      if (!have_best || cycles[j] < best.predicted_cycles) {
        best.placement = space.placements[c0 + j];
        best.predicted_cycles = cycles[j];
        have_best = true;
      }
    }
  }
  record_search_metrics(watch, best.evaluated, best.pruned,
                        best.not_evaluated, best.deadline_hit,
                        best.cancelled);
  return best;
}

// Core of the oracle over an already-enumerated, non-empty space.
OracleResult oracle_over(const KernelInfo& kernel, const GpuArch& arch,
                         const SearchOptions& options,
                         const PlacementSpace& space) {
  GPUHMS_SCOPED_PHASE("search.oracle_ns");
  const StopWatch watch(options);

  ThreadPool local_pool(options.pool ? 1 : options.num_threads);
  ThreadPool& pool = options.pool ? *options.pool : local_pool;

  OracleResult r;
  r.space_truncated = space.truncated;
  r.space_skipped = space.skipped_combinations;
  const std::size_t n = space.placements.size();
  std::vector<std::uint64_t> cycles(std::min(n, kChunk));

  for (std::size_t c0 = 0; c0 < n; c0 += kChunk) {
    if (watch.should_stop(&r.deadline_hit, &r.cancelled)) {
      if (r.simulated == 0) {
        const std::uint64_t c = simulate(kernel, space.placements[0], arch).cycles;
        r.best = r.worst = space.placements[0];
        r.best_cycles = r.worst_cycles = c;
        r.simulated = 1;
        r.not_simulated = n - 1;
      } else {
        r.not_simulated = n - c0;
      }
      record_search_metrics(watch, r.simulated, 0, r.not_simulated,
                            r.deadline_hit, r.cancelled);
      return r;
    }
    const std::size_t c1 = std::min(n, c0 + kChunk);
    pool.parallel_for(c1 - c0, [&](int, std::size_t j) {
      cycles[j] = simulate(kernel, space.placements[c0 + j], arch).cycles;
    });
    for (std::size_t j = 0; j < c1 - c0; ++j) {
      const std::size_t i = c0 + j;
      ++r.simulated;
      if (i == 0 || cycles[j] < r.best_cycles) {
        r.best = space.placements[i];
        r.best_cycles = cycles[j];
      }
      if (i == 0 || cycles[j] > r.worst_cycles) {
        r.worst = space.placements[i];
        r.worst_cycles = cycles[j];
      }
    }
  }
  record_search_metrics(watch, r.simulated, 0, r.not_simulated,
                        r.deadline_hit, r.cancelled);
  return r;
}

}  // namespace

SearchResult search_exhaustive(const Predictor& predictor, std::size_t cap) {
  SearchOptions o;
  o.cap = cap;
  return search_exhaustive(predictor, o);
}

SearchResult search_exhaustive(const Predictor& predictor,
                               const SearchOptions& options) {
  const KernelInfo& k = predictor.kernel();
  const GpuArch& arch = kepler_arch();
  const PlacementSpace space = enumerate_placement_space(k, arch, options.cap);
  GPUHMS_CHECK(!space.placements.empty());
  return exhaustive_over(predictor, options, space);
}

StatusOr<SearchResult> try_search_exhaustive(const Predictor& predictor,
                                             const SearchOptions& options) {
  const KernelInfo& k = predictor.kernel();
  const std::string ctx = "searching placements of kernel '" + k.name + "'";
  if (!predictor.has_sample())
    return FailedPreconditionError(
               "predictor has no profiled sample; call try_profile_sample or "
               "try_set_sample first")
        .annotate(ctx);
  const GpuArch& arch = kepler_arch();
  const PlacementSpace space = enumerate_placement_space(k, arch, options.cap);
  if (space.placements.empty())
    return InvalidArgumentError(
               "kernel '" + k.name + "' admits no legal placement under cap " +
               std::to_string(options.cap))
        .annotate(ctx);
  try {
    return exhaustive_over(predictor, options, space);
  } catch (const std::exception& e) {
    return InternalError(e.what()).annotate(ctx);
  }
}

SearchResult search_greedy(const Predictor& predictor, int max_sweeps) {
  const KernelInfo& k = predictor.kernel();
  const GpuArch& arch = kepler_arch();
  SearchResult r;
  r.placement = predictor.sample_placement();
  r.predicted_cycles = predictor.predict(r.placement).total_cycles;
  ++r.evaluated;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool changed = false;
    for (std::size_t a = 0; a < k.arrays.size(); ++a) {
      const int array = static_cast<int>(a);
      for (MemSpace s : kAllMemSpaces) {
        if (s == r.placement.of(array)) continue;
        const DataPlacement candidate = r.placement.with(array, s);
        if (validate_placement(k, candidate, arch)) continue;
        const double cycles = predictor.predict(candidate).total_cycles;
        ++r.evaluated;
        if (cycles < r.predicted_cycles) {
          r.placement = candidate;
          r.predicted_cycles = cycles;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return r;
}

OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           std::size_t cap) {
  SearchOptions o;
  o.cap = cap;
  return search_oracle(kernel, arch, o);
}

OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           const SearchOptions& options) {
  const PlacementSpace space =
      enumerate_placement_space(kernel, arch, options.cap);
  GPUHMS_CHECK(!space.placements.empty());
  return oracle_over(kernel, arch, options, space);
}

StatusOr<OracleResult> try_search_oracle(const KernelInfo& kernel,
                                         const GpuArch& arch,
                                         const SearchOptions& options) {
  const std::string ctx =
      "oracle-searching placements of kernel '" + kernel.name + "'";
  GPUHMS_RETURN_IF_ERROR(validate(kernel).annotate(ctx));
  GPUHMS_RETURN_IF_ERROR(validate(arch).annotate(ctx));
  const PlacementSpace space =
      enumerate_placement_space(kernel, arch, options.cap);
  if (space.placements.empty())
    return InvalidArgumentError(
               "kernel '" + kernel.name +
               "' admits no legal placement under cap " +
               std::to_string(options.cap))
        .annotate(ctx);
  try {
    return oracle_over(kernel, arch, options, space);
  } catch (const std::exception& e) {
    return InternalError(e.what()).annotate(ctx);
  }
}

}  // namespace gpuhms
