#include "model/search.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace gpuhms {

namespace {

// Candidates are scored in fixed-size chunks; the prune threshold (best
// cycles so far) only advances between chunks, so which candidates get
// pruned does not depend on the thread count or scheduling — a requirement
// for bit-identical serial/parallel results. The chunk size is a constant
// for the same reason.
constexpr std::size_t kChunk = 64;

}  // namespace

SearchResult search_exhaustive(const Predictor& predictor, std::size_t cap) {
  SearchOptions o;
  o.cap = cap;
  return search_exhaustive(predictor, o);
}

SearchResult search_exhaustive(const Predictor& predictor,
                               const SearchOptions& options) {
  const KernelInfo& k = predictor.kernel();
  const GpuArch& arch = kepler_arch();
  const PlacementSpace space = enumerate_placement_space(k, arch, options.cap);
  GPUHMS_CHECK(!space.placements.empty());

  ThreadPool local_pool(options.pool ? 1 : options.num_threads);
  ThreadPool& pool = options.pool ? *options.pool : local_pool;

  // One skeleton shared by every worker; one analyzer scratch per worker.
  std::shared_ptr<const TraceSkeleton> skeleton = predictor.skeleton();
  if (!skeleton && options.memoize_trace)
    skeleton = std::make_shared<TraceSkeleton>(k);
  std::vector<TraceAnalyzer> scratch;
  scratch.reserve(static_cast<std::size_t>(pool.size()));
  for (int t = 0; t < pool.size(); ++t)
    scratch.push_back(predictor.make_analyzer());

  SearchResult best;
  best.space_truncated = space.truncated;
  best.space_skipped = space.skipped_combinations;
  const std::size_t n = space.placements.size();
  constexpr double kPruned = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> cycles(std::min(n, kChunk));
  bool have_best = false;

  for (std::size_t c0 = 0; c0 < n; c0 += kChunk) {
    const std::size_t c1 = std::min(n, c0 + kChunk);
    pool.parallel_for(c1 - c0, [&](int worker, std::size_t j) {
      const DataPlacement& p = space.placements[c0 + j];
      if (options.prune && have_best && skeleton &&
          predictor.lower_bound_cycles(p, *skeleton) > best.predicted_cycles) {
        cycles[j] = kPruned;
        return;
      }
      cycles[j] = predictor
                      .predict_with(p, &scratch[static_cast<std::size_t>(worker)],
                                    skeleton.get())
                      .total_cycles;
    });
    for (std::size_t j = 0; j < c1 - c0; ++j) {
      if (std::isnan(cycles[j])) {
        ++best.pruned;
        continue;
      }
      ++best.evaluated;
      if (!have_best || cycles[j] < best.predicted_cycles) {
        best.placement = space.placements[c0 + j];
        best.predicted_cycles = cycles[j];
        have_best = true;
      }
    }
  }
  return best;
}

SearchResult search_greedy(const Predictor& predictor, int max_sweeps) {
  const KernelInfo& k = predictor.kernel();
  const GpuArch& arch = kepler_arch();
  SearchResult r;
  r.placement = predictor.sample_placement();
  r.predicted_cycles = predictor.predict(r.placement).total_cycles;
  ++r.evaluated;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool changed = false;
    for (std::size_t a = 0; a < k.arrays.size(); ++a) {
      const int array = static_cast<int>(a);
      for (MemSpace s : kAllMemSpaces) {
        if (s == r.placement.of(array)) continue;
        const DataPlacement candidate = r.placement.with(array, s);
        if (validate_placement(k, candidate, arch)) continue;
        const double cycles = predictor.predict(candidate).total_cycles;
        ++r.evaluated;
        if (cycles < r.predicted_cycles) {
          r.placement = candidate;
          r.predicted_cycles = cycles;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return r;
}

OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           std::size_t cap) {
  SearchOptions o;
  o.cap = cap;
  return search_oracle(kernel, arch, o);
}

OracleResult search_oracle(const KernelInfo& kernel, const GpuArch& arch,
                           const SearchOptions& options) {
  const PlacementSpace space =
      enumerate_placement_space(kernel, arch, options.cap);
  GPUHMS_CHECK(!space.placements.empty());

  ThreadPool local_pool(options.pool ? 1 : options.num_threads);
  ThreadPool& pool = options.pool ? *options.pool : local_pool;

  const std::size_t n = space.placements.size();
  std::vector<std::uint64_t> cycles(n);
  pool.parallel_for(n, [&](int, std::size_t i) {
    cycles[i] = simulate(kernel, space.placements[i], arch).cycles;
  });

  OracleResult r;
  r.space_truncated = space.truncated;
  r.space_skipped = space.skipped_combinations;
  for (std::size_t i = 0; i < n; ++i) {
    ++r.simulated;
    if (i == 0 || cycles[i] < r.best_cycles) {
      r.best = space.placements[i];
      r.best_cycles = cycles[i];
    }
    if (i == 0 || cycles[i] > r.worst_cycles) {
      r.worst = space.placements[i];
      r.worst_cycles = cycles[i];
    }
  }
  return r;
}

}  // namespace gpuhms
