#include "model/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace gpuhms {

namespace {

AnalysisOptions analysis_options(const ModelOptions& o) {
  AnalysisOptions a;
  a.even_bank_distribution = !o.address_mapping;
  return a;
}

TmemOptions tmem_options(const ModelOptions& o) {
  TmemOptions t;
  t.queuing_model = o.queuing_model;
  t.row_buffer_model = o.row_buffer_model;
  t.discipline = o.queue_discipline;
  return t;
}

double compute_itilp(const PlacementEvents& ev, double n_warps,
                     const GpuArch& arch) {
  const double itilp_max =
      static_cast<double>(arch.avg_inst_lat) /
      (static_cast<double>(arch.warp_size) /
       static_cast<double>(arch.simd_width));
  return std::max(1.0, std::min(ev.ilp * std::max(1.0, n_warps), itilp_max));
}

}  // namespace

Predictor::Predictor(const KernelInfo& kernel, const GpuArch& arch,
                     ModelOptions options, ToverlapModel overlap)
    : kernel_(&kernel), arch_(&arch), options_(options),
      overlap_(std::move(overlap)) {}

void Predictor::profile_sample(const DataPlacement& sample) {
  set_sample(sample, simulate(*kernel_, sample, *arch_));
}

void Predictor::set_sample(const DataPlacement& sample,
                           const SimResult& measured) {
  sample_ = sample;
  sample_result_ = measured;
  sample_ev_ = analyze_trace(*kernel_, sample, *arch_,
                             analysis_options(options_));
  anchor_scale_.reset();
}

const SimResult& Predictor::sample_result() const {
  GPUHMS_CHECK_MSG(sample_result_.has_value(), "no sample profiled");
  return *sample_result_;
}

const DataPlacement& Predictor::sample_placement() const {
  GPUHMS_CHECK_MSG(sample_.has_value(), "no sample profiled");
  return *sample_;
}

Prediction Predictor::predict_from_events(
    const PlacementEvents& target_ev) const {
  GPUHMS_CHECK_MSG(sample_result_.has_value(),
                   "profile_sample/set_sample must be called first");
  const ProfileCounters& sc = sample_result_->counters;
  const double total_warps =
      static_cast<double>(std::max<std::uint64_t>(1, sc.total_warps));
  const int active_sms = std::max(1, sc.active_sms);
  // Occupancy under the *target* placement (shared staging costs warps).
  const double n_warps = std::max(1.0, target_ev.warps_per_sm);

  Prediction p;

  // Issued instructions (Sec. III-B / Eq. 3).
  InstructionCountOptions ico;
  ico.detailed_counting = options_.detailed_instruction_counting;
  p.inst = estimate_issued_instructions(sc, *sample_ev_, target_ev,
                                        sc.total_warps, ico);

  // Instruction-tick -> cycle calibration from the sample run.
  const double tick_to_cycles =
      static_cast<double>(sample_result_->cycles) /
      std::max(1.0, static_cast<double>(sample_ev_->trace_ticks));

  // T_mem (Eq. 4-10).
  TmemInputs tin;
  tin.events = &target_ev;
  tin.total_warps = total_warps;
  tin.active_sms = active_sms;
  tin.n_warps_per_sm = n_warps;
  tin.issued_per_warp = p.inst.issued_per_warp;
  tin.tick_to_cycles = tick_to_cycles;
  const TmemResult tm = tmem(tin, *arch_, tmem_options(options_));
  p.t_mem = tm.t_mem;
  p.amat = tm.amat;
  p.dram_lat = tm.dram_lat;

  // T_comp (Eq. 2). W_serial is placement-invariant and absorbed by the
  // sample anchoring / the T_overlap regression constant.
  TcompInputs cin;
  cin.inst = p.inst;
  cin.total_warps = total_warps;
  cin.active_sms = active_sms;
  cin.itilp = compute_itilp(target_ev, n_warps, *arch_);
  cin.w_serial = 0.0;
  p.t_comp = tcomp(cin, *arch_);

  // T_overlap (Eq. 11-12). The upper bound keeps the overlap physical: it
  // cannot exceed the smaller of the two overlapped components.
  p.overlap_ratio = overlap_.overlap_ratio(target_ev, n_warps);
  p.t_overlap = std::clamp(p.overlap_ratio * p.t_mem,
                           -0.25 * (p.t_comp + p.t_mem),
                           std::min(p.t_comp, p.t_mem));

  p.raw_cycles = std::max(1.0, p.t_comp + p.t_mem - p.t_overlap);
  p.total_cycles = p.raw_cycles;
  return p;
}

Prediction Predictor::predict(const DataPlacement& target) const {
  const PlacementEvents target_ev =
      analyze_trace(*kernel_, target, *arch_, analysis_options(options_));
  Prediction p = predict_from_events(target_ev);

  if (options_.anchor_to_sample) {
    if (!anchor_scale_.has_value()) {
      const Prediction self = predict_from_events(*sample_ev_);
      anchor_scale_ = static_cast<double>(sample_result_->cycles) /
                      std::max(1.0, self.raw_cycles);
    }
    p.total_cycles = p.raw_cycles * *anchor_scale_;
  }
  return p;
}

ToverlapModel train_overlap_model_measured(std::span<const MeasuredCase> cases,
                                           const GpuArch& arch,
                                           const ModelOptions& options,
                                           double ridge) {
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (const MeasuredCase& c : cases) {
    GPUHMS_CHECK(c.kernel != nullptr);
    const SimResult& measured = c.measured;
    const PlacementEvents ev = analyze_trace(*c.kernel, c.placement, arch,
                                             analysis_options(options));
    const ProfileCounters& sc = measured.counters;
    const double total_warps =
        static_cast<double>(std::max<std::uint64_t>(1, sc.total_warps));
    const int active_sms = std::max(1, sc.active_sms);
    const double n_warps = std::max(1.0, ev.warps_per_sm);
    const double tick_to_cycles =
        static_cast<double>(measured.cycles) /
        std::max(1.0, static_cast<double>(ev.trace_ticks));

    // The training case is its own sample: issued instructions are measured.
    InstructionEstimate inst;
    inst.executed_total = static_cast<double>(sc.inst_executed);
    inst.replays_total = static_cast<double>(sc.replays_total());
    inst.issued_total = inst.executed_total + inst.replays_total;
    inst.issued_per_warp = inst.issued_total / total_warps;

    TmemInputs tin;
    tin.events = &ev;
    tin.total_warps = total_warps;
    tin.active_sms = active_sms;
    tin.n_warps_per_sm = n_warps;
    tin.issued_per_warp = inst.issued_per_warp;
    tin.tick_to_cycles = tick_to_cycles;
    const TmemResult tm = tmem(tin, arch, tmem_options(options));

    TcompInputs cin;
    cin.inst = inst;
    cin.total_warps = total_warps;
    cin.active_sms = active_sms;
    cin.itilp = compute_itilp(ev, n_warps, arch);
    const double tc = tcomp(cin, arch);

    if (tm.t_mem <= 0.0) continue;
    const double y = std::clamp(
        (tc + tm.t_mem - static_cast<double>(measured.cycles)) / tm.t_mem,
        -1.0, 1.5);
    xs.push_back(ToverlapModel::features(ev, n_warps));
    ys.push_back(y);
  }
  ToverlapModel model;
  if (!xs.empty()) model.train(xs, ys, ridge);
  return model;
}

ToverlapModel train_overlap_model(std::span<const TrainingCase> cases,
                                  const GpuArch& arch,
                                  const ModelOptions& options, double ridge) {
  std::vector<MeasuredCase> measured;
  measured.reserve(cases.size());
  for (const TrainingCase& c : cases) {
    GPUHMS_CHECK(c.kernel != nullptr);
    measured.push_back(
        {c.kernel, c.placement, simulate(*c.kernel, c.placement, arch)});
  }
  return train_overlap_model_measured(measured, arch, options, ridge);
}

}  // namespace gpuhms
