#include "model/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/obs.hpp"
#include "isa/addressing.hpp"

namespace gpuhms {

namespace {

AnalysisOptions analysis_options(const ModelOptions& o) {
  AnalysisOptions a;
  a.even_bank_distribution = !o.address_mapping;
  return a;
}

TmemOptions tmem_options(const ModelOptions& o) {
  TmemOptions t;
  t.queuing_model = o.queuing_model;
  t.row_buffer_model = o.row_buffer_model;
  t.discipline = o.queue_discipline;
  return t;
}

double compute_itilp(const PlacementEvents& ev, double n_warps,
                     const GpuArch& arch) {
  const double itilp_max =
      static_cast<double>(arch.avg_inst_lat) /
      (static_cast<double>(arch.warp_size) /
       static_cast<double>(arch.simd_width));
  return std::max(1.0, std::min(ev.ilp * std::max(1.0, n_warps), itilp_max));
}

}  // namespace

Predictor::Predictor(const KernelInfo& kernel, const GpuArch& arch,
                     ModelOptions options, ToverlapModel overlap)
    : kernel_(&kernel), arch_(&arch), options_(options),
      overlap_(std::move(overlap)) {}

void Predictor::profile_sample(const DataPlacement& sample) {
  set_sample(sample, simulate(*kernel_, sample, *arch_));
}

void Predictor::set_sample(const DataPlacement& sample,
                           const SimResult& measured) {
  GPUHMS_SCOPED_PHASE("predictor.set_sample_ns");
  GPUHMS_COUNTER_ADD("predictor.samples_set", 1);
  sample_ = sample;
  sample_result_ = measured;
  sample_ev_ = analyze_trace(*kernel_, sample, *arch_,
                             analysis_options(options_), skeleton_.get());
  // Anchor scale computed eagerly so predict() stays const and race-free
  // when one predictor is shared across search threads.
  const Prediction self = predict_from_events(*sample_ev_);
  anchor_scale_ = static_cast<double>(sample_result_->cycles) /
                  std::max(1.0, self.raw_cycles);
}

Status Predictor::try_profile_sample(const DataPlacement& sample) {
  GPUHMS_RETURN_IF_ERROR(
      validate(*kernel_, sample, *arch_)
          .annotate("profiling the sample placement of kernel '" +
                    kernel_->name + "'"));
  try {
    profile_sample(sample);
  } catch (const std::exception& e) {
    return InternalError(e.what()).annotate(
        "profiling the sample placement of kernel '" + kernel_->name + "'");
  }
  return OkStatus();
}

Status Predictor::try_set_sample(const DataPlacement& sample,
                                 const SimResult& measured) {
  const std::string ctx =
      "setting the sample measurement of kernel '" + kernel_->name + "'";
  GPUHMS_RETURN_IF_ERROR(validate(*kernel_, sample, *arch_).annotate(ctx));
  GPUHMS_RETURN_IF_ERROR(validate(measured).annotate(ctx));
  try {
    set_sample(sample, measured);
  } catch (const std::exception& e) {
    return InternalError(e.what()).annotate(ctx);
  }
  if (!std::isfinite(anchor_scale_) || anchor_scale_ <= 0.0) {
    sample_.reset();
    sample_result_.reset();
    sample_ev_.reset();
    anchor_scale_ = 1.0;
    return InternalError("sample calibration produced a non-finite or "
                         "non-positive anchor scale")
        .annotate(ctx);
  }
  return OkStatus();
}

std::shared_ptr<const TraceSkeleton> Predictor::memoize_trace() {
  if (!skeleton_) skeleton_ = std::make_shared<TraceSkeleton>(*kernel_);
  return skeleton_;
}

TraceAnalyzer Predictor::make_analyzer() const {
  return TraceAnalyzer(*kernel_, *arch_, analysis_options(options_));
}

const SimResult& Predictor::sample_result() const {
  GPUHMS_CHECK_MSG(sample_result_.has_value(), "no sample profiled");
  return *sample_result_;
}

const DataPlacement& Predictor::sample_placement() const {
  GPUHMS_CHECK_MSG(sample_.has_value(), "no sample profiled");
  return *sample_;
}

Prediction Predictor::predict_from_events(
    const PlacementEvents& target_ev) const {
  GPUHMS_CHECK_MSG(sample_result_.has_value(),
                   "profile_sample/set_sample must be called first");
  const ProfileCounters& sc = sample_result_->counters;
  const double total_warps =
      static_cast<double>(std::max<std::uint64_t>(1, sc.total_warps));
  const int active_sms = std::max(1, sc.active_sms);
  // Occupancy under the *target* placement (shared staging costs warps).
  const double n_warps = std::max(1.0, target_ev.warps_per_sm);

  Prediction p;

  // Issued instructions (Sec. III-B / Eq. 3).
  {
    GPUHMS_SCOPED_PHASE("predictor.inst_count_ns");
    InstructionCountOptions ico;
    ico.detailed_counting = options_.detailed_instruction_counting;
    p.inst = estimate_issued_instructions(sc, *sample_ev_, target_ev,
                                          sc.total_warps, ico);
  }

  // Instruction-tick -> cycle calibration from the sample run.
  const double tick_to_cycles =
      static_cast<double>(sample_result_->cycles) /
      std::max(1.0, static_cast<double>(sample_ev_->trace_ticks));

  // T_mem (Eq. 4-10).
  {
    GPUHMS_SCOPED_PHASE("predictor.tmem_ns");
    TmemInputs tin;
    tin.events = &target_ev;
    tin.total_warps = total_warps;
    tin.active_sms = active_sms;
    tin.n_warps_per_sm = n_warps;
    tin.issued_per_warp = p.inst.issued_per_warp;
    tin.tick_to_cycles = tick_to_cycles;
    const TmemResult tm = tmem(tin, *arch_, tmem_options(options_));
    p.t_mem = tm.t_mem;
    p.amat = tm.amat;
    p.dram_lat = tm.dram_lat;
    p.queue_saturated = tm.queue_saturated;
  }

  // T_comp (Eq. 2). W_serial is placement-invariant and absorbed by the
  // sample anchoring / the T_overlap regression constant.
  {
    GPUHMS_SCOPED_PHASE("predictor.tcomp_ns");
    TcompInputs cin;
    cin.inst = p.inst;
    cin.total_warps = total_warps;
    cin.active_sms = active_sms;
    cin.itilp = compute_itilp(target_ev, n_warps, *arch_);
    cin.w_serial = 0.0;
    p.t_comp = tcomp(cin, *arch_);
  }

  // T_overlap (Eq. 11-12). The upper bound keeps the overlap physical: it
  // cannot exceed the smaller of the two overlapped components.
  {
    GPUHMS_SCOPED_PHASE("predictor.toverlap_ns");
    p.overlap_ratio = overlap_.overlap_ratio(target_ev, n_warps);
    p.t_overlap = std::clamp(p.overlap_ratio * p.t_mem,
                             -0.25 * (p.t_comp + p.t_mem),
                             std::min(p.t_comp, p.t_mem));
  }

  p.raw_cycles = std::max(1.0, p.t_comp + p.t_mem - p.t_overlap);
  p.total_cycles = p.raw_cycles;
  return p;
}

Prediction Predictor::predict(const DataPlacement& target) const {
  return predict_with(target, nullptr, skeleton_.get());
}

Prediction Predictor::predict_with(const DataPlacement& target,
                                   TraceAnalyzer* analyzer,
                                   const TraceSkeleton* skeleton) const {
  GPUHMS_SCOPED_PHASE("predictor.predict_ns");
  // The skeleton replay is the predictor's memo: a hit replays pre-recorded
  // DSL streams, a miss re-runs the kernel function per candidate.
  if (skeleton != nullptr) {
    GPUHMS_COUNTER_ADD("predictor.memo_hits", 1);
  } else {
    GPUHMS_COUNTER_ADD("predictor.memo_misses", 1);
  }
  const PlacementEvents target_ev =
      analyzer ? analyzer->analyze(target, skeleton)
               : analyze_trace(*kernel_, target, *arch_,
                               analysis_options(options_), skeleton);
  GPUHMS_COUNTER_ADD("predictor.predictions", 1);
  GPUHMS_COUNTER_ADD("predictor.replay_global_divergence",
                     target_ev.replay_global_divergence);
  GPUHMS_COUNTER_ADD("predictor.replay_const_miss",
                     target_ev.replay_const_miss);
  GPUHMS_COUNTER_ADD("predictor.replay_const_divergence",
                     target_ev.replay_const_divergence);
  GPUHMS_COUNTER_ADD("predictor.replay_shared_conflict",
                     target_ev.replay_shared_conflict);
  Prediction p = predict_from_events(target_ev);
  if (options_.anchor_to_sample)
    p.total_cycles = p.raw_cycles * anchor_scale_;
  return p;
}

std::vector<Prediction> Predictor::predict_batch(
    std::span<const DataPlacement> targets, ThreadPool* pool) const {
  std::vector<Prediction> out(targets.size());
  if (targets.empty()) return out;
  // Share one skeleton across the whole batch even when the predictor has
  // not memoized one: its recording cost amortizes after a couple targets.
  std::shared_ptr<const TraceSkeleton> skel = skeleton_;
  if (!skel) skel = std::make_shared<TraceSkeleton>(*kernel_);
  ThreadPool local_pool(pool ? 1 : 0);
  ThreadPool& p = pool ? *pool : local_pool;
  std::vector<TraceAnalyzer> scratch;
  scratch.reserve(static_cast<std::size_t>(p.size()));
  for (int t = 0; t < p.size(); ++t) scratch.push_back(make_analyzer());
  p.parallel_for(targets.size(), [&](int worker, std::size_t i) {
    out[i] = predict_with(targets[i],
                          &scratch[static_cast<std::size_t>(worker)],
                          skel.get());
  });
  return out;
}

StatusOr<Prediction> Predictor::try_predict(const DataPlacement& target) const {
  if (!has_sample())
    return FailedPreconditionError(
        "no sample has been profiled for kernel '" + kernel_->name +
        "'; call try_profile_sample or try_set_sample first");
  GPUHMS_RETURN_IF_ERROR(
      validate(*kernel_, target, *arch_)
          .annotate("predicting a target placement of kernel '" +
                    kernel_->name + "'"));
  Prediction p;
  try {
    p = predict(target);
  } catch (const std::exception& e) {
    return InternalError(e.what()).annotate(
        "predicting placement " + target.to_string() + " of kernel '" +
        kernel_->name + "'");
  }
  if (!std::isfinite(p.total_cycles) || p.total_cycles <= 0.0)
    return InternalError("model produced a non-finite or non-positive "
                         "prediction for placement " + target.to_string())
        .annotate("predicting a target placement of kernel '" +
                  kernel_->name + "'");
  return p;
}

StatusOr<std::vector<Prediction>> Predictor::try_predict_batch(
    std::span<const DataPlacement> targets, ThreadPool* pool) const {
  if (!has_sample())
    return FailedPreconditionError(
        "no sample has been profiled for kernel '" + kernel_->name +
        "'; call try_profile_sample or try_set_sample first");
  for (std::size_t i = 0; i < targets.size(); ++i) {
    GPUHMS_RETURN_IF_ERROR(
        validate(*kernel_, targets[i], *arch_)
            .annotate("batch target #" + std::to_string(i) + " of kernel '" +
                      kernel_->name + "'"));
  }
  std::vector<Prediction> out;
  try {
    out = predict_batch(targets, pool);
  } catch (const std::exception& e) {
    return InternalError(e.what()).annotate(
        "batch-predicting " + std::to_string(targets.size()) +
        " placements of kernel '" + kernel_->name + "'");
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!std::isfinite(out[i].total_cycles) || out[i].total_cycles <= 0.0)
      return InternalError(
                 "model produced a non-finite or non-positive prediction "
                 "for batch target #" + std::to_string(i) + " (placement " +
                 targets[i].to_string() + ")")
          .annotate("batch-predicting placements of kernel '" +
                    kernel_->name + "'");
  }
  return out;
}

double Predictor::lower_bound_cycles(const DataPlacement& target,
                                     const TraceSkeleton& skeleton) const {
  GPUHMS_CHECK_MSG(sample_result_.has_value(),
                   "profile_sample/set_sample must be called first");
  const ProfileCounters& sc = sample_result_->counters;
  const double exec_sample = static_cast<double>(sc.inst_executed);
  const double replays_sample = static_cast<double>(sc.replays_total());
  const int active_sms = std::max(1, sc.active_sms);

  double issued_lb;
  if (!options_.detailed_instruction_counting) {
    // Targets are assumed to issue exactly what the sample issued.
    issued_lb = exec_sample + replays_sample;
  } else {
    // Executed instructions cannot fall below the placement-invariant
    // skeleton plus this placement's addressing-mode inserts (shared-staging
    // preambles only add more); replays (1)-(4) cannot fall below zero.
    double target_insts = static_cast<double>(skeleton.base_insts());
    const auto mem_ops = skeleton.mem_ops_per_array();
    for (std::size_t a = 0; a < kernel_->arrays.size(); ++a) {
      target_insts +=
          static_cast<double>(mem_ops[a]) *
          addr_calc_instructions(target.of(static_cast<int>(a)),
                                 kernel_->arrays[a].dtype);
    }
    const double executed_lb =
        std::max(0.0, exec_sample + target_insts -
                          static_cast<double>(sample_ev_->insts_executed));
    const double replays_lb = std::max(
        0.0, replays_sample - static_cast<double>(sample_ev_->replays_1_4()));
    issued_lb = executed_lb + replays_lb;
  }

  // T_comp >= issued / active_SMs (throughput >= 1 cycle per issued
  // instruction, W_serial = 0), and the Eq. 12 clamp keeps
  // T = T_comp + T_mem - T_overlap >= max(T_comp, T_mem).
  const double raw_lb = std::max(1.0, tcomp_floor(issued_lb, active_sms));
  return options_.anchor_to_sample ? raw_lb * anchor_scale_ : raw_lb;
}

double PlacementBounder::bound_cycles(double addr_insts_total) const {
  // Mirrors lower_bound_cycles below, with the addressing total supplied by
  // the search's running sum and the T_mem floor folded in: the Eq. 12
  // overlap clamp keeps T >= max(T_comp, T_mem), so both floors apply.
  double issued_lb;
  if (!detailed_) {
    issued_lb = issued_const_;
  } else {
    const double executed_lb = std::max(0.0, exec_base_ + addr_insts_total);
    issued_lb = executed_lb + replays_floor_;
  }
  const double raw_lb = std::max(
      1.0, std::max(tcomp_floor(issued_lb, active_sms_), tmem_floor_));
  return raw_lb * anchor_;
}

PlacementBounder Predictor::make_bounder(const TraceSkeleton& skeleton) const {
  GPUHMS_CHECK_MSG(sample_result_.has_value(),
                   "profile_sample/set_sample must be called first");
  const ProfileCounters& sc = sample_result_->counters;
  PlacementBounder b;
  b.detailed_ = options_.detailed_instruction_counting;
  b.active_sms_ = std::max(1, sc.active_sms);
  b.anchor_ = options_.anchor_to_sample ? anchor_scale_ : 1.0;
  const double exec_sample = static_cast<double>(sc.inst_executed);
  const double replays_sample = static_cast<double>(sc.replays_total());
  b.issued_const_ = exec_sample + replays_sample;
  b.exec_base_ = exec_sample + static_cast<double>(skeleton.base_insts()) -
                 static_cast<double>(sample_ev_->insts_executed);
  b.replays_floor_ = std::max(
      0.0, replays_sample - static_cast<double>(sample_ev_->replays_1_4()));
  TmemFloorInputs tf;
  tf.load_insts_lb = static_cast<double>(skeleton.base_load_insts());
  tf.active_sms = b.active_sms_;
  b.tmem_floor_ = tmem_floor(tf, *arch_);

  const std::size_t n = kernel_->arrays.size();
  const auto mem_ops = skeleton.mem_ops_per_array();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  b.addr_.assign(n, {kInf, kInf, kInf, kInf, kInf});
  b.relaxed_spaces_.resize(n);
  b.min_addr_.assign(n, kInf);
  // All-Global is legal for every array in isolation and costs no capacity,
  // so validating against it yields exactly the per-array relaxed set.
  DataPlacement all_global(
      std::vector<MemSpace>(n, MemSpace::Global));
  for (std::size_t a = 0; a < n; ++a) {
    for (MemSpace s : kAllMemSpaces) {
      if (validate_placement(*kernel_, all_global.with(static_cast<int>(a), s),
                             *arch_))
        continue;
      const double insts =
          static_cast<double>(mem_ops[a]) *
          addr_calc_instructions(s, kernel_->arrays[a].dtype);
      b.addr_[a][static_cast<std::size_t>(s)] = insts;
      b.relaxed_spaces_[a].push_back(s);
      b.min_addr_[a] = std::min(b.min_addr_[a], insts);
    }
    if (b.relaxed_spaces_[a].empty()) b.infeasible_ = true;
  }
  if (!b.infeasible_)
    for (std::size_t a = 0; a < n; ++a) b.root_addr_ += b.min_addr_[a];
  return b;
}

ToverlapModel train_overlap_model_measured(std::span<const MeasuredCase> cases,
                                           const GpuArch& arch,
                                           const ModelOptions& options,
                                           double ridge, ThreadPool* pool) {
  // Analyze the cases in parallel into per-case slots; the fold below visits
  // the slots in case order so the regression input — and hence the model —
  // is identical for every thread count.
  struct Slot {
    std::vector<double> x;
    double y = 0.0;
    bool valid = false;
  };
  std::vector<Slot> slots(cases.size());
  ThreadPool local_pool(pool ? 1 : 0);
  ThreadPool& tp = pool ? *pool : local_pool;
  tp.parallel_for(cases.size(), [&](int, std::size_t ci) {
    const MeasuredCase& c = cases[ci];
    GPUHMS_CHECK(c.kernel != nullptr);
    const SimResult& measured = c.measured;
    const PlacementEvents ev = analyze_trace(*c.kernel, c.placement, arch,
                                             analysis_options(options));
    const ProfileCounters& sc = measured.counters;
    const double total_warps =
        static_cast<double>(std::max<std::uint64_t>(1, sc.total_warps));
    const int active_sms = std::max(1, sc.active_sms);
    const double n_warps = std::max(1.0, ev.warps_per_sm);
    const double tick_to_cycles =
        static_cast<double>(measured.cycles) /
        std::max(1.0, static_cast<double>(ev.trace_ticks));

    // The training case is its own sample: issued instructions are measured.
    InstructionEstimate inst;
    inst.executed_total = static_cast<double>(sc.inst_executed);
    inst.replays_total = static_cast<double>(sc.replays_total());
    inst.issued_total = inst.executed_total + inst.replays_total;
    inst.issued_per_warp = inst.issued_total / total_warps;

    TmemInputs tin;
    tin.events = &ev;
    tin.total_warps = total_warps;
    tin.active_sms = active_sms;
    tin.n_warps_per_sm = n_warps;
    tin.issued_per_warp = inst.issued_per_warp;
    tin.tick_to_cycles = tick_to_cycles;
    const TmemResult tm = tmem(tin, arch, tmem_options(options));

    TcompInputs cin;
    cin.inst = inst;
    cin.total_warps = total_warps;
    cin.active_sms = active_sms;
    cin.itilp = compute_itilp(ev, n_warps, arch);
    const double tc = tcomp(cin, arch);

    if (tm.t_mem <= 0.0) return;
    Slot& s = slots[ci];
    s.y = std::clamp(
        (tc + tm.t_mem - static_cast<double>(measured.cycles)) / tm.t_mem,
        -1.0, 1.5);
    s.x = ToverlapModel::features(ev, n_warps);
    s.valid = true;
  });

  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (Slot& s : slots) {
    if (!s.valid) continue;
    xs.push_back(std::move(s.x));
    ys.push_back(s.y);
  }
  ToverlapModel model;
  if (!xs.empty()) model.train(xs, ys, ridge);
  return model;
}

ToverlapModel train_overlap_model(std::span<const TrainingCase> cases,
                                  const GpuArch& arch,
                                  const ModelOptions& options, double ridge,
                                  ThreadPool* pool) {
  std::vector<MeasuredCase> measured(cases.size());
  ThreadPool local_pool(pool ? 1 : 0);
  ThreadPool& tp = pool ? *pool : local_pool;
  tp.parallel_for(cases.size(), [&](int, std::size_t i) {
    const TrainingCase& c = cases[i];
    GPUHMS_CHECK(c.kernel != nullptr);
    measured[i] = {c.kernel, c.placement, simulate(*c.kernel, c.placement, arch)};
  });
  return train_overlap_model_measured(measured, arch, options, ridge, &tp);
}

}  // namespace gpuhms
