// Issued-instruction quantification across data placements (Sec. III-B).
//
// The paper's T_comp model needs #inst — issued instructions per warp,
// including replays — for a *target* placement that was never run. It is
// derived from the sample placement's measured profile plus trace-analysis
// deltas:
//
//   executed_target = executed_sample(measured)
//                   + [executed_target(trace) - executed_sample(trace)]
//       (addressing-mode instruction difference + shared-staging preamble)
//
//   replays_target  = replays_sample(measured)
//                   - replays_sample_1-4(trace) + replays_target_1-4(trace)
//       (Eq. 3: causes (1)-(4) re-derived per placement; (5)-(10) assumed
//        placement-invariant)
//
//   issued_target   = executed_target + replays_target
#pragma once

#include "model/trace_analysis.hpp"
#include "sim/counters.hpp"

namespace gpuhms {

struct InstructionEstimate {
  double executed_total = 0.0;  // whole kernel
  double replays_total = 0.0;
  double issued_total = 0.0;
  double issued_per_warp = 0.0;

  // Deltas for diagnostics.
  double addr_mode_delta = 0.0;
  double replay_delta = 0.0;
};

struct InstructionCountOptions {
  // Ablation (Fig. 7): without detailed instruction counting, the target is
  // assumed to issue exactly what the sample issued (the pre-existing
  // executed-instruction assumption).
  bool detailed_counting = true;
};

InstructionEstimate estimate_issued_instructions(
    const ProfileCounters& sample_profile, const PlacementEvents& sample_ev,
    const PlacementEvents& target_ev, std::uint64_t total_warps,
    const InstructionCountOptions& opts = {});

}  // namespace gpuhms
