#include "model/trace_analysis.hpp"

#include <algorithm>
#include <memory>

#include "cache/cache.hpp"
#include "common/check.hpp"
#include "sim/coalesce.hpp"

namespace gpuhms {

namespace {

// Per-bank row-buffer state machine (analysis order, no timing).
struct BankRow {
  std::uint64_t open_row = 0;
  bool row_open = false;
  std::uint64_t last_tick = 0;
  bool seen = false;
};

struct Analyzer {
  Analyzer(const KernelInfo& k, const DataPlacement& p, const GpuArch& a,
           const AnalysisOptions& o)
      : arch(a), opts(o), mat(k, p, a), mapping(kepler_mapping(a)),
        l2(l2_config(a)) {
    const int nb = mapping.num_banks();
    rows.resize(static_cast<std::size_t>(nb));
    ev.banks.resize(static_cast<std::size_t>(nb));
    const_caches.reserve(static_cast<std::size_t>(a.num_sms));
    tex_caches.reserve(static_cast<std::size_t>(a.num_sms));
    for (int s = 0; s < a.num_sms; ++s) {
      const_caches.push_back(std::make_unique<SetAssocCache>(const_cache_config(a)));
      tex_caches.push_back(std::make_unique<SetAssocCache>(tex_cache_config(a)));
    }
  }

  void dram_request(std::uint64_t line_addr, bool is_store) {
    ++ev.dram_requests;
    if (!is_store) ++ev.dram_load_requests;
    int bank;
    std::uint64_t row;
    const auto d = mapping.decode(line_addr);
    row = d.row;
    if (opts.even_bank_distribution) {
      bank = static_cast<int>(rr_bank++ % static_cast<std::uint64_t>(
                                               mapping.num_banks()));
    } else {
      bank = d.bank;
    }
    BankRow& b = rows[static_cast<std::size_t>(bank)];
    BankStream& s = ev.banks[static_cast<std::size_t>(bank)];
    std::uint64_t service;
    if (!b.row_open) {
      service = arch.dram.row_miss_service;
      ++ev.row_misses;
    } else if (b.open_row == row) {
      service = arch.dram.row_hit_service;
      ++ev.row_hits;
    } else {
      service = arch.dram.row_conflict_service;
      ++ev.row_conflicts;
    }
    if (arch.dram.page_policy == PagePolicy::Open) {
      b.row_open = true;
      b.open_row = row;
    } else {
      b.row_open = false;  // closed page: auto-precharge
    }
    if (b.seen) s.interarrival.add(static_cast<double>(tick - b.last_tick));
    b.seen = true;
    b.last_tick = tick;
    s.service.add(static_cast<double>(service));
    ++s.count;
  }

  void mem_op(const TraceOp& op, int sm) {
    ++ev.mem_insts;
    const bool is_store = op.cls == OpClass::Store;
    if (!is_store) ++ev.load_insts;
    if (op.active_mask == 0) return;  // predicated off: issues, touches nothing
    switch (op.space) {
      case MemSpace::Global: {
        coalesce_lines(op, arch.cache_line, lines);
        ++ev.global_requests;
        ev.global_transactions += lines.size();
        ev.replay_global_divergence += lines.size() - 1;
        if (!is_store) ev.offchip_load_transactions += lines.size();
        for (std::uint64_t line : lines) {
          ++ev.l2_transactions;
          if (!l2.access(line, is_store)) {
            ++ev.l2_misses;
            dram_request(line, is_store);
          }
        }
        break;
      }
      case MemSpace::Texture1D:
      case MemSpace::Texture2D: {
        coalesce_lines(op, arch.cache_line, lines);
        ++ev.tex_requests;
        ev.tex_transactions += lines.size();
        ev.offchip_load_transactions += lines.size();
        for (std::uint64_t line : lines) {
          if (tex_caches[static_cast<std::size_t>(sm)]->access(line, false))
            continue;
          ++ev.tex_misses;
          ++ev.l2_transactions;
          if (!l2.access(line, false)) {
            ++ev.l2_misses;
            dram_request(line, false);
          }
        }
        break;
      }
      case MemSpace::Constant: {
        coalesce_lines(op, arch.cache_line, lines);
        const int div = distinct_words(op);
        ++ev.const_requests;
        ev.replay_const_divergence += static_cast<std::uint64_t>(div - 1);
        ev.offchip_load_transactions += lines.size();
        for (std::uint64_t line : lines) {
          if (const_caches[static_cast<std::size_t>(sm)]->access(line, false))
            continue;
          ++ev.const_misses;
          ++ev.replay_const_miss;
          ++ev.l2_transactions;
          if (!l2.access(line, false)) {
            ++ev.l2_misses;
            dram_request(line, false);
          }
        }
        break;
      }
      case MemSpace::Shared: {
        const int degree = shared_conflict_degree(op, arch.shared_banks);
        ++ev.shared_requests;
        if (!is_store) ++ev.shared_load_requests;
        ev.shared_conflicts += static_cast<std::uint64_t>(degree - 1);
        ev.replay_shared_conflict += static_cast<std::uint64_t>(degree - 1);
        break;
      }
    }
  }

  void run() {
    const KernelInfo& k = mat.kernel();
    const int blocks_per_sm = mat.layout().blocks_per_sm(arch);
    ev.warps_per_sm = mat.layout().warps_per_sm(arch);
    const std::int64_t wave_blocks =
        static_cast<std::int64_t>(arch.num_sms) * blocks_per_sm;

    std::uint64_t dep_breaks = 0;       // ops consuming their predecessor
    std::uint64_t mem_chain_breaks = 0; // mem ops followed by a dependent op

    for (std::int64_t wave = 0; wave * wave_blocks < k.num_blocks; ++wave) {
      const std::int64_t b0 = wave * wave_blocks;
      const std::int64_t b1 = std::min(k.num_blocks, b0 + wave_blocks);
      auto traces = mat.generate(b0, b1);
      // Round-robin, one op per warp per turn, mirroring the schedulers.
      std::vector<std::size_t> pcs(traces.size(), 0);
      bool progress = true;
      while (progress) {
        progress = false;
        for (std::size_t w = 0; w < traces.size(); ++w) {
          const auto& ops = traces[w].ops;
          std::size_t& pc = pcs[w];
          if (pc >= ops.size()) continue;
          progress = true;
          const TraceOp& op = ops[pc];
          const int sm = static_cast<int>(traces[w].ctx.block %
                                          static_cast<std::int64_t>(arch.num_sms));
          ++tick;
          ++ev.insts_executed;
          if (op.uses_prev) ++dep_breaks;
          switch (op.cls) {
            case OpClass::Load:
            case OpClass::Store:
              mem_op(op, sm);
              if (pc + 1 < ops.size() && ops[pc + 1].uses_prev)
                ++mem_chain_breaks;
              break;
            case OpClass::Sync:
              ++ev.sync_insts;
              break;
            default:
              if (op.is_addr_calc) ++ev.addr_calc_insts;
              break;
          }
          ++pc;
        }
      }
    }

    ev.trace_ticks = tick;
    ev.ilp = static_cast<double>(ev.insts_executed) /
             static_cast<double>(std::max<std::uint64_t>(1, dep_breaks));
    ev.mlp = static_cast<double>(std::max<std::uint64_t>(1, ev.mem_insts)) /
             static_cast<double>(std::max<std::uint64_t>(1, mem_chain_breaks));
    ev.mlp = std::clamp(ev.mlp, 1.0, 8.0);
    ev.ilp = std::clamp(ev.ilp, 1.0, 16.0);
  }

  const GpuArch& arch;
  AnalysisOptions opts;
  TraceMaterializer mat;
  AddressMapping mapping;
  SetAssocCache l2;
  std::vector<std::unique_ptr<SetAssocCache>> const_caches;
  std::vector<std::unique_ptr<SetAssocCache>> tex_caches;
  std::vector<BankRow> rows;
  std::vector<std::uint64_t> lines;
  PlacementEvents ev;
  std::uint64_t tick = 0;
  std::uint64_t rr_bank = 0;
};

}  // namespace

PlacementEvents analyze_trace(const KernelInfo& kernel,
                              const DataPlacement& placement,
                              const GpuArch& arch,
                              const AnalysisOptions& opts) {
  Analyzer an(kernel, placement, arch, opts);
  an.run();
  return std::move(an.ev);
}

}  // namespace gpuhms
