#include "model/trace_analysis.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "common/obs.hpp"
#include "sim/coalesce.hpp"

namespace gpuhms {

namespace {

// GPUHMS_LEGACY_REPLAY=1 forces the scalar replay path process-wide (the
// differential-test escape hatch; "" and "0" leave the SoA engine on).
bool legacy_replay_env() {
  const char* v = std::getenv("GPUHMS_LEGACY_REPLAY");
  return v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

TraceAnalyzer::TraceAnalyzer(const KernelInfo& kernel, const GpuArch& arch,
                             const AnalysisOptions& opts)
    : kernel_(&kernel), arch_(&arch), opts_(opts),
      mapping_(arch_mapping(arch)), l2_(l2_config(arch)) {
  const std::size_t num_sms = static_cast<std::size_t>(arch.num_sms);
  const_caches_.assign(num_sms, SetAssocCache(const_cache_config(arch)));
  tex_caches_.assign(num_sms, SetAssocCache(tex_cache_config(arch)));
  rows_.resize(static_cast<std::size_t>(mapping_.num_banks()));
  use_soa_ = !opts.legacy_replay && !legacy_replay_env() &&
             SoaLowering::supports(arch);
}

void TraceAnalyzer::reset() {
  l2_.reset();
  for (SetAssocCache& c : const_caches_) c.reset();
  for (SetAssocCache& c : tex_caches_) c.reset();
  std::fill(rows_.begin(), rows_.end(), BankRow{});
  ev_ = PlacementEvents{};
  ev_.banks.resize(static_cast<std::size_t>(mapping_.num_banks()));
  tick_ = 0;
  rr_bank_ = 0;
  dep_breaks_ = 0;
  mem_chain_breaks_ = 0;
}

void TraceAnalyzer::dram_request(std::uint64_t line_addr, bool is_store) {
  ++ev_.dram_requests;
  if (!is_store) ++ev_.dram_load_requests;
  int bank;
  std::uint64_t row;
  const auto d = mapping_.decode(line_addr);
  row = d.row;
  if (opts_.even_bank_distribution) {
    bank = static_cast<int>(rr_bank_++ % static_cast<std::uint64_t>(
                                             mapping_.num_banks()));
  } else {
    bank = d.bank;
  }
  BankRow& b = rows_[static_cast<std::size_t>(bank)];
  BankStream& s = ev_.banks[static_cast<std::size_t>(bank)];
  std::uint64_t service;
  if (!b.row_open) {
    service = arch_->dram.row_miss_service;
    ++ev_.row_misses;
  } else if (b.open_row == row) {
    service = arch_->dram.row_hit_service;
    ++ev_.row_hits;
  } else {
    service = arch_->dram.row_conflict_service;
    ++ev_.row_conflicts;
  }
  if (arch_->dram.page_policy == PagePolicy::Open) {
    b.row_open = true;
    b.open_row = row;
  } else {
    b.row_open = false;  // closed page: auto-precharge
  }
  if (b.seen) s.interarrival.add(static_cast<double>(tick_ - b.last_tick));
  b.seen = true;
  b.last_tick = tick_;
  s.service.add(static_cast<double>(service));
  ++s.count;
}

void TraceAnalyzer::mem_op(const OpView& op, int sm) {
  ++ev_.mem_insts;
  const bool is_store = op.cls == OpClass::Store;
  if (!is_store) ++ev_.load_insts;
  if (op.active_mask == 0) return;  // predicated off: issues, touches nothing
  switch (op.space) {
    case MemSpace::Global: {
      coalesce_lines(op.active_mask, op.addr, arch_->cache_line, lines_);
      ++ev_.global_requests;
      ev_.global_transactions += lines_.size();
      ev_.replay_global_divergence += lines_.size() - 1;
      if (!is_store) ev_.offchip_load_transactions += lines_.size();
      for (std::uint64_t line : lines_) {
        ++ev_.l2_transactions;
        if (!l2_.access(line, is_store)) {
          ++ev_.l2_misses;
          dram_request(line, is_store);
        }
      }
      break;
    }
    case MemSpace::Texture1D:
    case MemSpace::Texture2D: {
      coalesce_lines(op.active_mask, op.addr, arch_->cache_line, lines_);
      ++ev_.tex_requests;
      ev_.tex_transactions += lines_.size();
      ev_.offchip_load_transactions += lines_.size();
      for (std::uint64_t line : lines_) {
        if (tex_caches_[static_cast<std::size_t>(sm)].access(line, false))
          continue;
        ++ev_.tex_misses;
        ++ev_.l2_transactions;
        if (!l2_.access(line, false)) {
          ++ev_.l2_misses;
          dram_request(line, false);
        }
      }
      break;
    }
    case MemSpace::Constant: {
      coalesce_lines(op.active_mask, op.addr, arch_->cache_line, lines_);
      const int div = distinct_words(op.active_mask, op.addr);
      ++ev_.const_requests;
      ev_.replay_const_divergence += static_cast<std::uint64_t>(div - 1);
      ev_.offchip_load_transactions += lines_.size();
      for (std::uint64_t line : lines_) {
        if (const_caches_[static_cast<std::size_t>(sm)].access(line, false))
          continue;
        ++ev_.const_misses;
        ++ev_.replay_const_miss;
        ++ev_.l2_transactions;
        if (!l2_.access(line, false)) {
          ++ev_.l2_misses;
          dram_request(line, false);
        }
      }
      break;
    }
    case MemSpace::Shared: {
      const int degree =
          shared_conflict_degree(op.active_mask, op.addr, arch_->shared_banks);
      ++ev_.shared_requests;
      if (!is_store) ++ev_.shared_load_requests;
      ev_.shared_conflicts += static_cast<std::uint64_t>(degree - 1);
      ev_.replay_shared_conflict += static_cast<std::uint64_t>(degree - 1);
      break;
    }
  }
}

namespace {

// Adapters giving rr_schedule a uniform warp/op view over the two lowered
// representations. Both must present the identical op stream — the memoized
// path is required to be bit-identical to the plain one.
struct PlainWave {
  const std::vector<WarpTrace>* traces;
  std::size_t warp_count() const { return traces->size(); }
  std::size_t op_count(std::size_t w) const { return (*traces)[w].ops.size(); }
  std::int64_t block(std::size_t w) const { return (*traces)[w].ctx.block; }
  TraceAnalyzer::OpView op(std::size_t w, std::size_t pc) const {
    const TraceOp& t = (*traces)[w].ops[pc];
    return {t.cls,       t.space,       t.array,          t.uses_prev,
            t.is_addr_calc, t.active_mask, t.addr.data()};
  }
  bool next_uses_prev(std::size_t w, std::size_t pc) const {
    return (*traces)[w].ops[pc].uses_prev;
  }
};

struct CompactWave {
  const CompactTrace* ct;
  const TraceSkeleton* skeleton;
  const MemoryLayout* layout;
  // Device pool bases, resolved once per (array, kind) instead of per op
  // (generate_compact already ensured every pool this wave references).
  mutable std::vector<const AddrBlock*> pool_base;
  std::size_t warp_count() const { return ct->warps.size(); }
  std::size_t op_count(std::size_t w) const {
    return ct->warps[w].end - ct->warps[w].begin;
  }
  std::int64_t block(std::size_t w) const { return ct->warps[w].ctx.block; }
  const AddrBlock* device_pool(int array, bool block_linear) const {
    if (pool_base.empty())
      pool_base.assign(skeleton->kernel().arrays.size() * 2, nullptr);
    const std::size_t slot =
        static_cast<std::size_t>(array) * 2 + (block_linear ? 1 : 0);
    if (pool_base[slot] == nullptr)
      pool_base[slot] =
          skeleton->device_addr_pool(array, block_linear, *layout).data();
    return pool_base[slot];
  }
  TraceAnalyzer::OpView op(std::size_t w, std::size_t pc) const {
    const CompactOp& c = ct->ops[ct->warps[w].begin + pc];
    const std::int64_t* addr = nullptr;
    if (is_memory(c.cls)) {
      switch (c.pool) {
        case kPoolLocal:
          addr = ct->local_addrs[c.addr_index].data();
          break;
        case kPoolDeviceBlockLinear:
          addr = device_pool(c.array, true)[c.addr_index].data();
          break;
        default:
          addr = device_pool(c.array, false)[c.addr_index].data();
          break;
      }
    }
    return {c.cls,       c.space,       c.array, c.uses_prev,
            c.is_addr_calc, c.active_mask, addr};
  }
  bool next_uses_prev(std::size_t w, std::size_t pc) const {
    return ct->ops[ct->warps[w].begin + pc].uses_prev;
  }
};

}  // namespace

// Round-robin, one op per warp per turn, mirroring the schedulers. The ILP /
// MLP dependency counters accumulate across waves through the members the
// callers zero in reset().
template <class WaveTraces>
void TraceAnalyzer::rr_schedule(const WaveTraces& traces) {
  const std::size_t warp_count = traces.warp_count();
  std::vector<std::size_t> pcs(warp_count, 0);
  std::vector<std::size_t> ns(warp_count);
  std::vector<int> warp_sm(warp_count);
  for (std::size_t w = 0; w < warp_count; ++w) {
    ns[w] = traces.op_count(w);
    warp_sm[w] = static_cast<int>(traces.block(w) %
                                  static_cast<std::int64_t>(arch_->num_sms));
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t w = 0; w < warp_count; ++w) {
      const std::size_t n = ns[w];
      std::size_t& pc = pcs[w];
      if (pc >= n) continue;
      progress = true;
      const OpView op = traces.op(w, pc);
      const int sm = warp_sm[w];
      ++tick_;
      ++ev_.insts_executed;
      if (op.uses_prev) ++dep_breaks_;
      switch (op.cls) {
        case OpClass::Load:
        case OpClass::Store:
          mem_op(op, sm);
          if (pc + 1 < n && traces.next_uses_prev(w, pc + 1))
            ++mem_chain_breaks_;
          break;
        case OpClass::Sync:
          ++ev_.sync_insts;
          break;
        default:
          if (op.is_addr_calc) ++ev_.addr_calc_insts;
          break;
      }
      ++pc;
    }
  }
}

void TraceAnalyzer::run(const TraceMaterializer& mat) {
  const KernelInfo& k = mat.kernel();
  const int blocks_per_sm = mat.layout().blocks_per_sm(*arch_);
  ev_.warps_per_sm = mat.layout().warps_per_sm(*arch_);
  const std::int64_t wave_blocks =
      static_cast<std::int64_t>(arch_->num_sms) * blocks_per_sm;
  for (std::int64_t wave = 0; wave * wave_blocks < k.num_blocks; ++wave) {
    const std::int64_t b0 = wave * wave_blocks;
    const std::int64_t b1 = std::min(k.num_blocks, b0 + wave_blocks);
    const auto traces = mat.generate(b0, b1);
    rr_schedule(PlainWave{&traces});
  }
}

void TraceAnalyzer::run_compact(const TraceMaterializer& mat,
                                const TraceSkeleton& skeleton) {
  const KernelInfo& k = mat.kernel();
  const int blocks_per_sm = mat.layout().blocks_per_sm(*arch_);
  ev_.warps_per_sm = mat.layout().warps_per_sm(*arch_);
  const std::int64_t wave_blocks =
      static_cast<std::int64_t>(arch_->num_sms) * blocks_per_sm;
  for (std::int64_t wave = 0; wave * wave_blocks < k.num_blocks; ++wave) {
    const std::int64_t b0 = wave * wave_blocks;
    const std::int64_t b1 = std::min(k.num_blocks, b0 + wave_blocks);
    mat.generate_compact(b0, b1, skeleton, compact_scratch_);
    rr_schedule(CompactWave{&compact_scratch_, &skeleton, &mat.layout()});
  }
}

// Replays the SoA-lowered waves through the same stateful cache/row-buffer
// models the scalar paths use. Stage 1 (lower_wave) pre-resolved coalescing,
// scheduling and every order-free counter; only the order-sensitive walk —
// cache lookups and DRAM bank streams, driven by the precomputed issue
// ticks — remains, over the off-chip records alone.
void TraceAnalyzer::run_soa(const TraceMaterializer& mat,
                            const TraceSkeleton& skeleton) {
  const KernelInfo& k = mat.kernel();
  const int blocks_per_sm = mat.layout().blocks_per_sm(*arch_);
  ev_.warps_per_sm = mat.layout().warps_per_sm(*arch_);
  soa_.bind(mat, skeleton, *arch_);
  std::uint64_t total_ops = 0;
  const std::int64_t wave_blocks =
      static_cast<std::int64_t>(arch_->num_sms) * blocks_per_sm;
  for (std::int64_t wave = 0; wave * wave_blocks < k.num_blocks; ++wave) {
    const std::int64_t b0 = wave * wave_blocks;
    const std::int64_t b1 = std::min(k.num_blocks, b0 + wave_blocks);
    SoaWave wv;
    {
      GPUHMS_SCOPED_PHASE("trace.soa_lower_ns");
      wv = soa_.lower_wave(b0, b1);
    }
    GPUHMS_SCOPED_PHASE("trace.soa_replay_ns");
    total_ops += wv.ops;
    for (std::size_t i = 0; i < wv.mem_n; ++i) {
      tick_ = wv.tick[i];
      const std::uint64_t* lines = wv.lines[i];
      const std::uint16_t cnt = wv.lines_n[i];
      const bool is_store = wv.is_store[i] != 0;
      const std::size_t sm = wv.sm[i];
      switch (static_cast<MemSpace>(wv.space[i])) {
        case MemSpace::Global:
          for (std::uint16_t j = 0; j < cnt; ++j) {
            ++ev_.l2_transactions;
            if (!l2_.access(lines[j], is_store)) {
              ++ev_.l2_misses;
              dram_request(lines[j], is_store);
            }
          }
          break;
        case MemSpace::Texture1D:
        case MemSpace::Texture2D:
          for (std::uint16_t j = 0; j < cnt; ++j) {
            if (tex_caches_[sm].access(lines[j], false)) continue;
            ++ev_.tex_misses;
            ++ev_.l2_transactions;
            if (!l2_.access(lines[j], false)) {
              ++ev_.l2_misses;
              dram_request(lines[j], false);
            }
          }
          break;
        case MemSpace::Constant:
          for (std::uint16_t j = 0; j < cnt; ++j) {
            if (const_caches_[sm].access(lines[j], false)) continue;
            ++ev_.const_misses;
            ++ev_.replay_const_miss;
            ++ev_.l2_transactions;
            if (!l2_.access(lines[j], false)) {
              ++ev_.l2_misses;
              dram_request(lines[j], false);
            }
          }
          break;
        case MemSpace::Shared:
          break;  // folded analytically; never scheduled
      }
    }
  }
  const SoaTallies& t = soa_.tallies();
  ev_.insts_executed = t.insts_executed;
  ev_.addr_calc_insts = t.addr_calc_insts;
  ev_.mem_insts = t.mem_insts;
  ev_.load_insts = t.load_insts;
  ev_.sync_insts = t.sync_insts;
  ev_.global_requests = t.global_requests;
  ev_.global_transactions = t.global_transactions;
  ev_.replay_global_divergence = t.replay_global_divergence;
  ev_.tex_requests = t.tex_requests;
  ev_.tex_transactions = t.tex_transactions;
  ev_.const_requests = t.const_requests;
  ev_.replay_const_divergence = t.replay_const_divergence;
  ev_.offchip_load_transactions = t.offchip_load_transactions;
  ev_.shared_requests = t.shared_requests;
  ev_.shared_load_requests = t.shared_load_requests;
  ev_.shared_conflicts = t.shared_conflicts;
  ev_.replay_shared_conflict = t.shared_conflicts;
  dep_breaks_ = t.dep_breaks;
  mem_chain_breaks_ = t.mem_chain_breaks;
  tick_ = total_ops;
}

PlacementEvents TraceAnalyzer::analyze(const DataPlacement& placement,
                                       const TraceSkeleton* skeleton) {
  GPUHMS_SCOPED_PHASE("trace.analyze_ns");
  reset();
  TraceMaterializer mat(*kernel_, placement, *arch_);
  if (skeleton != nullptr && use_soa_) {
    run_soa(mat, *skeleton);
  } else if (skeleton != nullptr) {
    run_compact(mat, *skeleton);
  } else {
    run(mat);
  }
  ev_.trace_ticks = tick_;
  GPUHMS_COUNTER_ADD("trace.analyses", 1);
  if (skeleton != nullptr && use_soa_) {
    GPUHMS_COUNTER_ADD("trace.analyses_soa", 1);
  } else if (skeleton != nullptr) {
    GPUHMS_COUNTER_ADD("trace.analyses_compact", 1);
  } else {
    GPUHMS_COUNTER_ADD("trace.analyses_full", 1);
  }
  GPUHMS_COUNTER_ADD("trace.insts_lowered", ev_.insts_executed);
  GPUHMS_COUNTER_ADD("trace.mem_insts", ev_.mem_insts);
  // Coalescing profile: warp-level requests vs the cache-line transactions
  // they coalesced into (ratio transactions/requests = divergence factor).
  GPUHMS_COUNTER_ADD("trace.global_requests", ev_.global_requests);
  GPUHMS_COUNTER_ADD("trace.global_transactions", ev_.global_transactions);
  GPUHMS_COUNTER_ADD("trace.dram_requests", ev_.dram_requests);
  ev_.ilp = static_cast<double>(ev_.insts_executed) /
            static_cast<double>(std::max<std::uint64_t>(1, dep_breaks_));
  ev_.mlp = static_cast<double>(std::max<std::uint64_t>(1, ev_.mem_insts)) /
            static_cast<double>(std::max<std::uint64_t>(1, mem_chain_breaks_));
  ev_.mlp = std::clamp(ev_.mlp, 1.0, 8.0);
  ev_.ilp = std::clamp(ev_.ilp, 1.0, 16.0);
  return std::move(ev_);
}

PlacementEvents analyze_trace(const KernelInfo& kernel,
                              const DataPlacement& placement,
                              const GpuArch& arch,
                              const AnalysisOptions& opts,
                              const TraceSkeleton* skeleton) {
  TraceAnalyzer an(kernel, arch, opts);
  return an.analyze(placement, skeleton);
}

}  // namespace gpuhms
