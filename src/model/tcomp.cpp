#include "model/tcomp.hpp"

#include <algorithm>

namespace gpuhms {

double tcomp(const TcompInputs& in, const GpuArch& arch) {
  const double insts_per_sm = in.inst.issued_per_warp * in.total_warps /
                              std::max(1, in.active_sms);
  // Eq. 13: cycles per issued instruction. ITILP >= avg_inst_lat means the
  // pipeline is saturated and one instruction retires per slot.
  const double throughput =
      std::max(1.0, static_cast<double>(arch.avg_inst_lat) /
                        std::max(1.0, in.itilp));
  return insts_per_sm * throughput + in.w_serial;
}

double tcomp_floor(double issued_insts_lb, int active_sms) {
  // throughput >= 1 and w_serial >= 0 in tcomp() above, so this never
  // exceeds tcomp() evaluated on any placement issuing >= issued_insts_lb.
  return std::max(0.0, issued_insts_lb) / std::max(1, active_sms);
}

}  // namespace gpuhms
