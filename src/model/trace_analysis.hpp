// Model-side trace analysis (Sec. IV of the paper).
//
// Replays the materialized trace of a (kernel, placement) pair through
// GPGPU-Sim-style cache models and a row-buffer state machine — *without*
// timing — to produce everything the analytical models need:
//   * executed-instruction and addressing-instruction counts (Sec. III-B),
//   * replay counts for causes (1)-(4) (Eq. 3),
//   * per-space request/miss events (T_overlap features, Eq. 11),
//   * per-bank arrival and service statistics for the G/G/1 queuing model
//     (Sec. III-C3) — inter-arrival times measured on an instruction-slot
//     clock, as the paper approximates, and service times classified by
//     row-buffer outcome (Eq. 8),
//   * ILP / MLP estimates for the Appendix equations (Eq. 13-19).
//
// Warps are interleaved round-robin within resident waves that mirror the
// simulator's block-to-SM assignment, so the arrival process seen by the
// banks approximates the hardware interleaving.
#pragma once

#include <vector>

#include "cache/cache.hpp"
#include "common/stats.hpp"
#include "dram/address_mapping.hpp"
#include "sim/counters.hpp"
#include "trace/generator.hpp"
#include "trace/soa.hpp"

namespace gpuhms {

struct AnalysisOptions {
  // Ablation (Fig. 8): ignore the detected address mapping and spread DRAM
  // requests round-robin over banks.
  bool even_bank_distribution = false;
  // Force the legacy scalar replay instead of the data-oriented SoA engine
  // on skeleton-backed analyses (differential testing; the results are
  // required to be bit-identical). The GPUHMS_LEGACY_REPLAY environment
  // variable forces this process-wide.
  bool legacy_replay = false;
};

struct BankStream {
  RunningStat interarrival;  // instruction-slot clock deltas
  RunningStat service;       // cycles, from row-buffer classification
  std::uint64_t count = 0;
};

struct PlacementEvents {
  // --- instruction profile (totals over the whole kernel) ------------------
  std::uint64_t insts_executed = 0;   // all lowered warp instructions
  std::uint64_t addr_calc_insts = 0;  // addressing-mode IALUs (Sec. III-B)
  std::uint64_t mem_insts = 0;        // warp-level loads+stores
  std::uint64_t load_insts = 0;       // warp-level loads (latency-bound)
  std::uint64_t sync_insts = 0;

  // --- replay estimates, causes (1)-(4) ------------------------------------
  std::uint64_t replay_global_divergence = 0;
  std::uint64_t replay_const_miss = 0;
  std::uint64_t replay_const_divergence = 0;
  std::uint64_t replay_shared_conflict = 0;
  std::uint64_t replays_1_4() const {
    return replay_global_divergence + replay_const_miss +
           replay_const_divergence + replay_shared_conflict;
  }

  // --- per-space memory events ---------------------------------------------
  std::uint64_t global_requests = 0, global_transactions = 0;
  std::uint64_t l2_transactions = 0, l2_misses = 0;
  std::uint64_t const_requests = 0, const_misses = 0;
  std::uint64_t tex_requests = 0, tex_transactions = 0, tex_misses = 0;
  std::uint64_t shared_requests = 0, shared_conflicts = 0;
  std::uint64_t dram_requests = 0;
  std::uint64_t row_hits = 0, row_misses = 0, row_conflicts = 0;
  // Load-side splits: the substrate's stores retire through write buffers
  // without stalling warps, so T_mem's effective-request count and AMAT mix
  // are computed over loads (stores still load the banks and queues).
  std::uint64_t offchip_load_transactions = 0;
  std::uint64_t shared_load_requests = 0;
  std::uint64_t dram_load_requests = 0;

  // --- queuing inputs -------------------------------------------------------
  std::vector<BankStream> banks;
  std::uint64_t trace_ticks = 0;  // total instruction-slot clock span

  // --- parallelism estimates ------------------------------------------------
  double ilp = 1.0;  // independent-run length of the instruction stream
  double mlp = 1.0;  // consecutive outstanding memory requests per warp
  // Resident warps per SM under THIS placement (occupancy: shared-memory
  // staging can shrink it) — the `w` term of Eq. 11 and the N of Eq. 14/18.
  double warps_per_sm = 1.0;

  // Total off-chip + shared warp-level requests; denominator for the
  // event-ratio features of Eq. 11.
  double total_mem_events() const {
    return static_cast<double>(global_transactions + const_requests +
                               tex_requests + shared_requests);
  }

  double offchip_transactions() const {
    return static_cast<double>(global_transactions + tex_transactions +
                               const_requests);
  }
};

// Reusable trace-replay engine: one instance owns the cache models, the
// row-buffer state and the coalescing scratch, and analyzes any number of
// placements of one kernel without reallocating them (the per-candidate hot
// path of a placement search). Instances are NOT thread-safe — give each
// worker thread its own analyzer; the (optional) TraceSkeleton is immutable
// and can be shared by all of them.
class TraceAnalyzer {
 public:
  TraceAnalyzer(const KernelInfo& kernel, const GpuArch& arch,
                const AnalysisOptions& opts = {});

  // Replays the (kernel, placement) trace in analysis order. The skeleton,
  // when given, must be recorded from this analyzer's kernel; it skips the
  // kernel-function re-run inside trace materialization.
  PlacementEvents analyze(const DataPlacement& placement,
                          const TraceSkeleton* skeleton = nullptr);

  const KernelInfo& kernel() const { return *kernel_; }

  // Uniform view of one lowered op, so the replay loop is shared between the
  // plain TraceOp path and the compact memoized path (`addr` is only
  // dereferenced for memory ops). Public for the internal wave adapters.
  struct OpView {
    OpClass cls;
    MemSpace space;
    std::int16_t array;
    bool uses_prev;
    bool is_addr_calc;
    std::uint32_t active_mask;
    const std::int64_t* addr;
  };

 private:
  struct BankRow {
    std::uint64_t open_row = 0;
    bool row_open = false;
    std::uint64_t last_tick = 0;
    bool seen = false;
  };

  void reset();
  void dram_request(std::uint64_t line_addr, bool is_store);
  void mem_op(const OpView& op, int sm);
  template <class WaveTraces>
  void rr_schedule(const WaveTraces& traces);
  void run(const TraceMaterializer& mat);
  void run_compact(const TraceMaterializer& mat,
                   const TraceSkeleton& skeleton);
  void run_soa(const TraceMaterializer& mat, const TraceSkeleton& skeleton);

  const KernelInfo* kernel_;
  const GpuArch* arch_;
  AnalysisOptions opts_;
  AddressMapping mapping_;
  SetAssocCache l2_;
  std::vector<SetAssocCache> const_caches_;  // one per SM
  std::vector<SetAssocCache> tex_caches_;
  std::vector<BankRow> rows_;
  std::vector<std::uint64_t> lines_;  // coalescing scratch
  CompactTrace compact_scratch_;      // memoized-path wave buffer, reused
  SoaLowering soa_;                   // data-oriented replay engine
  bool use_soa_ = false;
  PlacementEvents ev_;
  std::uint64_t tick_ = 0;
  std::uint64_t rr_bank_ = 0;
  std::uint64_t dep_breaks_ = 0;        // ops consuming their predecessor
  std::uint64_t mem_chain_breaks_ = 0;  // mem ops followed by a dependent op
};

PlacementEvents analyze_trace(const KernelInfo& kernel,
                              const DataPlacement& placement,
                              const GpuArch& arch,
                              const AnalysisOptions& opts = {},
                              const TraceSkeleton* skeleton = nullptr);

}  // namespace gpuhms
