// End-to-end prediction framework (Sec. IV): given a kernel, profile one
// *sample* placement (here: run the simulator substrate, standing in for an
// nvprof run on the K80) and predict the execution time of any *target*
// placement via T = T_comp + T_mem - T_overlap (Eq. 1).
//
// ModelOptions toggles reproduce the paper's ablations:
//   * detailed_instruction_counting  — Fig. 7 (addressing mode + Eq. 3 replays)
//   * queuing_model                  — Fig. 8/9 (G/G/1 vs constant latency)
//   * address_mapping                — Fig. 8 (detected map vs even spread)
#pragma once

#include <optional>
#include <span>

#include "kernel/placement.hpp"
#include "model/instruction_counter.hpp"
#include "model/tcomp.hpp"
#include "model/tmem.hpp"
#include "model/toverlap.hpp"
#include "sim/simulator.hpp"

namespace gpuhms {

struct ModelOptions {
  bool detailed_instruction_counting = true;
  bool queuing_model = true;
  bool address_mapping = true;
  bool row_buffer_model = true;
  // Queue discipline for the DRAM model; MM1 exists to reproduce the
  // paper's argument that Markovian queues misfit GPU arrival processes.
  QueueDiscipline queue_discipline = QueueDiscipline::GG1;
  // Anchor predictions on the sample's measured/predicted ratio — this is
  // the "quantified correlation" use of the sample placement.
  bool anchor_to_sample = true;

  // The paper's "baseline" configuration of Sec. V-B.
  static ModelOptions baseline() {
    ModelOptions o;
    o.detailed_instruction_counting = false;
    o.queuing_model = false;
    o.address_mapping = false;
    o.row_buffer_model = false;
    return o;
  }
};

struct Prediction {
  double t_comp = 0.0;
  double t_mem = 0.0;
  double t_overlap = 0.0;
  double total_cycles = 0.0;  // anchored when the option is on
  double raw_cycles = 0.0;    // before anchoring
  double amat = 0.0;
  double dram_lat = 0.0;
  double overlap_ratio = 0.0;
  InstructionEstimate inst;
};

class Predictor {
 public:
  Predictor(const KernelInfo& kernel, const GpuArch& arch,
            ModelOptions options = {}, ToverlapModel overlap = {});

  // Run the simulator substrate on the sample placement ("measure" it).
  void profile_sample(const DataPlacement& sample);
  // Inject an existing measurement instead.
  void set_sample(const DataPlacement& sample, const SimResult& measured);

  Prediction predict(const DataPlacement& target) const;

  const SimResult& sample_result() const;
  const DataPlacement& sample_placement() const;
  const KernelInfo& kernel() const { return *kernel_; }
  const ModelOptions& options() const { return options_; }

 private:
  Prediction predict_from_events(const PlacementEvents& target_ev) const;

  const KernelInfo* kernel_;
  const GpuArch* arch_;
  ModelOptions options_;
  ToverlapModel overlap_;

  std::optional<DataPlacement> sample_;
  std::optional<SimResult> sample_result_;
  std::optional<PlacementEvents> sample_ev_;
  mutable std::optional<double> anchor_scale_;
};

// --- T_overlap training ------------------------------------------------------
struct TrainingCase {
  const KernelInfo* kernel = nullptr;
  DataPlacement placement;
};

// A training case together with its (already collected) measurement, so a
// harness comparing several model variants can simulate each placement once.
struct MeasuredCase {
  const KernelInfo* kernel = nullptr;
  DataPlacement placement;
  SimResult measured;
};

// Computes the measured overlap ratio y = (T_comp + T_mem - T_measured) /
// T_mem against the analytical T_comp/T_mem of each placement and fits
// Eq. 11 by ridge regression.
ToverlapModel train_overlap_model_measured(std::span<const MeasuredCase> cases,
                                           const GpuArch& arch,
                                           const ModelOptions& options = {},
                                           double ridge = 1e-3);

// Convenience: runs every training case on the simulator substrate first.
ToverlapModel train_overlap_model(std::span<const TrainingCase> cases,
                                  const GpuArch& arch,
                                  const ModelOptions& options = {},
                                  double ridge = 1e-3);

}  // namespace gpuhms
