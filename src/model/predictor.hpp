// End-to-end prediction framework (Sec. IV): given a kernel, profile one
// *sample* placement (here: run the simulator substrate, standing in for an
// nvprof run on the K80) and predict the execution time of any *target*
// placement via T = T_comp + T_mem - T_overlap (Eq. 1).
//
// ModelOptions toggles reproduce the paper's ablations:
//   * detailed_instruction_counting  — Fig. 7 (addressing mode + Eq. 3 replays)
//   * queuing_model                  — Fig. 8/9 (G/G/1 vs constant latency)
//   * address_mapping                — Fig. 8 (detected map vs even spread)
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "kernel/placement.hpp"
#include "model/instruction_counter.hpp"
#include "model/tcomp.hpp"
#include "model/tmem.hpp"
#include "model/toverlap.hpp"
#include "sim/simulator.hpp"

namespace gpuhms {

class Predictor;

// Incremental admissible lower bound over *partial* placements, the pruning
// engine of branch-and-bound search (search_branch_and_bound): arrays the
// search has pinned contribute their actual addressing-mode instruction
// counts (Eq. 2-3), unassigned arrays their cheapest count over the spaces
// any legal completion could use, and T_mem enters as the placement-
// independent tmem_floor (Eq. 4-8 with zero queuing wait). The bound of a
// node never exceeds predict(completion).total_cycles for any legal
// completion of that node; on a full placement it equals
// Predictor::lower_bound_cycles maxed with the T_mem floor.
//
// All per-array tables are precomputed at construction, so descending one
// tree level costs one add and bound_cycles() is O(1). Immutable after
// construction; safe to share across threads.
class PlacementBounder {
 public:
  // A default-constructed bounder is an empty shell (no arrays, no tables);
  // populated ones come from Predictor::make_bounder.
  PlacementBounder() = default;

  // Spaces an array could occupy in *some* legal placement: the per-array
  // constraints (writability, Texture2D shape, the array's own footprint vs.
  // the constant/shared capacity) with every other array relaxed to Global.
  // A superset of any placement-context-dependent legal set, which keeps the
  // min below admissible — and exactly the per-level branching set of the
  // search (capacity interactions are handled by running prefix sums there).
  std::span<const MemSpace> relaxed_spaces(std::size_t array) const {
    return relaxed_spaces_[array];
  }

  // Addressing-instruction contribution of pinning `array` to `space`
  // (skeleton mem ops x Eq. 2-3 addr-calc instructions). +inf for spaces
  // outside relaxed_spaces(array).
  double addr_insts(std::size_t array, MemSpace space) const {
    return addr_[array][static_cast<std::size_t>(space)];
  }
  // Cheapest contribution over relaxed_spaces(array) — what an unassigned
  // array contributes to a node's addressing total.
  double min_addr_insts(std::size_t array) const { return min_addr_[array]; }
  // Sum of min_addr_insts over all arrays (the root node's total).
  double root_addr_insts() const { return root_addr_; }
  // True when some array has no relaxed-legal space (no legal placement
  // exists at all); every other accessor is meaningless then.
  bool infeasible() const { return infeasible_; }

  // Anchored lower bound on total cycles for a node whose addressing-
  // instruction total is `addr_insts_total` (pinned arrays' addr_insts plus
  // unassigned arrays' min_addr_insts).
  double bound_cycles(double addr_insts_total) const;

 private:
  friend class Predictor;

  std::vector<std::array<double, kNumMemSpaces>> addr_;
  std::vector<std::vector<MemSpace>> relaxed_spaces_;
  std::vector<double> min_addr_;
  double root_addr_ = 0.0;
  bool infeasible_ = false;
  bool detailed_ = true;
  double issued_const_ = 0.0;  // !detailed_counting: the sample's issue count
  double exec_base_ = 0.0;  // sample executed + skeleton base - sample-event
  double replays_floor_ = 0.0;
  double tmem_floor_ = 0.0;
  int active_sms_ = 1;
  double anchor_ = 1.0;
};

struct ModelOptions {
  bool detailed_instruction_counting = true;
  bool queuing_model = true;
  bool address_mapping = true;
  bool row_buffer_model = true;
  // Queue discipline for the DRAM model; MM1 exists to reproduce the
  // paper's argument that Markovian queues misfit GPU arrival processes.
  QueueDiscipline queue_discipline = QueueDiscipline::GG1;
  // Anchor predictions on the sample's measured/predicted ratio — this is
  // the "quantified correlation" use of the sample placement.
  bool anchor_to_sample = true;

  // The paper's "baseline" configuration of Sec. V-B.
  static ModelOptions baseline() {
    ModelOptions o;
    o.detailed_instruction_counting = false;
    o.queuing_model = false;
    o.address_mapping = false;
    o.row_buffer_model = false;
    return o;
  }
};

struct Prediction {
  double t_comp = 0.0;
  double t_mem = 0.0;
  double t_overlap = 0.0;
  double total_cycles = 0.0;  // anchored when the option is on
  double raw_cycles = 0.0;    // before anchoring
  double amat = 0.0;
  double dram_lat = 0.0;
  double overlap_ratio = 0.0;
  // True when the G/G/1 queuing model clamped an over-saturated or
  // degenerate bank (rho >= rho_max, or non-finite inputs): the prediction
  // is a bounded extrapolation rather than a steady-state delay.
  bool queue_saturated = false;
  InstructionEstimate inst;
};

// Once a sample is profiled (profile_sample/set_sample), every predict
// method is const and touches no hidden state: one Predictor can be shared
// by any number of threads (the anchor scale is computed eagerly at sample
// time, not lazily inside predict).
class Predictor {
 public:
  Predictor(const KernelInfo& kernel, const GpuArch& arch,
            ModelOptions options = {}, ToverlapModel overlap = {});

  // Run the simulator substrate on the sample placement ("measure" it).
  // Aborts on malformed input; prefer try_profile_sample at API boundaries.
  void profile_sample(const DataPlacement& sample);
  // Inject an existing measurement instead. Aborts on malformed input.
  void set_sample(const DataPlacement& sample, const SimResult& measured);

  // Non-aborting variants: validate the placement against this predictor's
  // kernel/arch (and, for try_set_sample, the measurement's counter
  // identities) and return INVALID_ARGUMENT naming the offending entity
  // instead of aborting. Exceptions escaping the substrate (including
  // injected faults) surface as INTERNAL.
  Status try_profile_sample(const DataPlacement& sample);
  Status try_set_sample(const DataPlacement& sample, const SimResult& measured);

  // Whether a sample has been profiled/injected (the precondition of every
  // predict entry point).
  bool has_sample() const { return sample_result_.has_value(); }

  // Record (once) the placement-independent DSL skeleton of the kernel and
  // reuse it in every subsequent predict — the access skeleton is shared by
  // all placements, so a search pays the kernel-function replay once.
  // Returns the skeleton so callers can share it across threads.
  std::shared_ptr<const TraceSkeleton> memoize_trace();
  std::shared_ptr<const TraceSkeleton> skeleton() const { return skeleton_; }

  Prediction predict(const DataPlacement& target) const;

  // Hot-path variant: `analyzer` (one per thread) supplies reusable
  // cache/row-buffer scratch, `skeleton` the pre-recorded DSL streams.
  // Either may be null.
  Prediction predict_with(const DataPlacement& target, TraceAnalyzer* analyzer,
                          const TraceSkeleton* skeleton) const;

  // Predict many placements, optionally spread over a thread pool (a local
  // pool of default size is used when null). Results are in target order and
  // identical to per-call predict().
  std::vector<Prediction> predict_batch(std::span<const DataPlacement> targets,
                                        ThreadPool* pool = nullptr) const;

  // Non-aborting variants of predict/predict_batch:
  //   * FAILED_PRECONDITION when no sample has been profiled yet,
  //   * INVALID_ARGUMENT when a target placement is malformed or illegal
  //     (the batch variant names the offending target index),
  //   * INTERNAL when the model produces a non-finite prediction or an
  //     exception (e.g. an injected fault) escapes the analysis pipeline.
  StatusOr<Prediction> try_predict(const DataPlacement& target) const;
  StatusOr<std::vector<Prediction>> try_predict_batch(
      std::span<const DataPlacement> targets, ThreadPool* pool = nullptr) const;

  // Cheap lower bound on predict(target).total_cycles from skeleton
  // statistics alone (no trace replay): issued instructions can't fall below
  // the skeleton plus the placement's addressing-mode inserts, replays (1)-(4)
  // can't fall below zero, and T = T_comp + T_mem - T_overlap >= T_comp under
  // the physical overlap clamp. Used by exhaustive search to skip dominated
  // candidates.
  double lower_bound_cycles(const DataPlacement& target,
                            const TraceSkeleton& skeleton) const;

  // Builds the partial-placement bound tables for branch-and-bound search
  // (requires a profiled sample). The skeleton must be this kernel's.
  PlacementBounder make_bounder(const TraceSkeleton& skeleton) const;

  // A trace analyzer configured like this predictor's analysis passes (one
  // per worker thread for predict_with).
  TraceAnalyzer make_analyzer() const;

  const SimResult& sample_result() const;
  const DataPlacement& sample_placement() const;
  const KernelInfo& kernel() const { return *kernel_; }
  const GpuArch& arch() const { return *arch_; }
  const ModelOptions& options() const { return options_; }

 private:
  Prediction predict_from_events(const PlacementEvents& target_ev) const;

  const KernelInfo* kernel_;
  const GpuArch* arch_;
  ModelOptions options_;
  ToverlapModel overlap_;

  std::optional<DataPlacement> sample_;
  std::optional<SimResult> sample_result_;
  std::optional<PlacementEvents> sample_ev_;
  double anchor_scale_ = 1.0;  // computed eagerly in set_sample
  std::shared_ptr<const TraceSkeleton> skeleton_;
};

// --- T_overlap training ------------------------------------------------------
struct TrainingCase {
  const KernelInfo* kernel = nullptr;
  DataPlacement placement;
};

// A training case together with its (already collected) measurement, so a
// harness comparing several model variants can simulate each placement once.
struct MeasuredCase {
  const KernelInfo* kernel = nullptr;
  DataPlacement placement;
  SimResult measured;
};

// Computes the measured overlap ratio y = (T_comp + T_mem - T_measured) /
// T_mem against the analytical T_comp/T_mem of each placement and fits
// Eq. 11 by ridge regression. Cases are analyzed in parallel over `pool`
// (a local default-size pool when null); the regression consumes them in
// case order, so the fit is independent of the thread count.
ToverlapModel train_overlap_model_measured(std::span<const MeasuredCase> cases,
                                           const GpuArch& arch,
                                           const ModelOptions& options = {},
                                           double ridge = 1e-3,
                                           ThreadPool* pool = nullptr);

// Convenience: runs every training case on the simulator substrate first
// (simulations spread over the pool as well).
ToverlapModel train_overlap_model(std::span<const TrainingCase> cases,
                                  const GpuArch& arch,
                                  const ModelOptions& options = {},
                                  double ridge = 1e-3,
                                  ThreadPool* pool = nullptr);

}  // namespace gpuhms
