#include "model/tmem.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gpuhms {

TmemResult tmem(const TmemInputs& in, const GpuArch& arch,
                const TmemOptions& opts) {
  GPUHMS_CHECK(in.events != nullptr);
  const PlacementEvents& ev = *in.events;
  TmemResult r;

  // --- DRAM latency (Sec. III-C) -------------------------------------------
  if (opts.queuing_model) {
    const auto banks = build_bank_inputs(ev, in.tick_to_cycles);
    const QueuingResult q = opts.discipline == QueueDiscipline::GG1
                                ? dram_latency_gg1(banks, opts.rho_max)
                                : dram_latency_mm1(banks, opts.rho_max);
    r.dram_lat = q.dram_lat;
    r.queue_delay = q.avg_queue_delay;
    r.queue_saturated = q.saturated;
  } else if (opts.row_buffer_model) {
    r.dram_lat = dram_latency_constant(ev, arch);
  } else {
    // Prior work's constant, microbenchmark-style latency.
    r.dram_lat = static_cast<double>(arch.dram.row_miss_service);
  }
  // The bank service time excludes the fixed controller/interconnect
  // pipeline; requests always pay it on top.
  r.dram_lat += static_cast<double>(arch.dram.pipeline_lat);

  // --- AMAT (Eq. 5) ---------------------------------------------------------
  // Computed over the latency-bound (load) traffic: stores retire through
  // write buffers without stalling warps on this substrate, but they still
  // occupy banks and so already shaped the queuing DRAM latency above.
  const double offchip = static_cast<double>(ev.offchip_load_transactions);
  const double shared = static_cast<double>(ev.shared_load_requests);
  const double total = std::max(1.0, offchip + shared);
  r.miss_ratio = static_cast<double>(ev.dram_load_requests) / total;
  r.shmem_ratio = shared / total;
  // Eq. 5, with the cache hit latency charged to the off-chip fraction of
  // the requests: shared-memory accesses never enter the cache hierarchy,
  // so charging them hit_lat (the literal reading of the equation) would
  // systematically overprice shared-heavy placements.
  r.amat = r.dram_lat * r.miss_ratio +
           static_cast<double>(arch.cache_hit_lat) * (1.0 - r.shmem_ratio) +
           static_cast<double>(arch.shared_lat) * r.shmem_ratio;

  // --- Effective memory requests per SM (Eq. 17) -----------------------------
  const double loads = static_cast<double>(
      std::max<std::uint64_t>(1, ev.load_insts));
  const double mem_per_warp = loads / std::max(1.0, in.total_warps);
  const double trans_per_mem = (offchip + shared) / loads;

  WarpParallelismInputs win;
  win.n_warps = in.n_warps_per_sm;
  win.issued_per_warp = in.issued_per_warp;
  win.mem_insts_per_warp = mem_per_warp;
  win.transactions_per_mem = trans_per_mem;
  win.mem_lat = r.amat;
  win.mlp = ev.mlp;
  win.ilp = ev.ilp;
  win.unloaded_service = dram_latency_constant(ev, arch);
  win.dram_per_mem = static_cast<double>(ev.dram_load_requests) / loads;
  win.active_sms = in.active_sms;
  win.total_banks = arch.total_banks();
  const WarpParallelism wp = compute_warp_parallelism(win, arch);

  r.effective_requests_per_sm =
      loads / std::max(1, in.active_sms) / std::max(1.0, wp.itmlp);

  // Eq. 4.
  r.t_mem = r.effective_requests_per_sm * r.amat;
  return r;
}

double tmem_floor(const TmemFloorInputs& in, const GpuArch& arch) {
  // tmem() computes t_mem = loads / SMs / ITMLP * AMAT. Bounding each factor
  // over every possible placement:
  //   * loads >= in.load_insts_lb (skeleton floor, see TmemFloorInputs);
  //   * AMAT (Eq. 5) is a convex mix of dram_lat * miss (>= 0 with the
  //     Eq. 9 wait relaxed to queue_delay_floor()), cache_hit_lat, and
  //     shared_lat, so AMAT >= amat_min = min(cache_hit_lat, shared_lat);
  //   * ITMLP (Eq. 18) <= MWP_peak_bw = max(1, per_sm_bw * max(1, AMAT) /
  //     max(1e-3, dram_per_mem)) with per_sm_bw <= total_banks /
  //     (bank_service_floor * active_SMs)  (Eq. 8 service >= row-hit).
  // Splitting on the max(1, .) in MWP_peak_bw: when the cap is 1,
  // t_mem >= loads/SMs * amat_min; otherwise the AMAT factors cancel
  // (amat_min >= 1) and t_mem >= loads/SMs * dpm_min / per_sm_bw. Taking
  // the min of both branches is therefore always admissible.
  const double amat_min = static_cast<double>(
      std::min(arch.cache_hit_lat, arch.shared_lat));
  constexpr double kDpmMin = 1e-3;  // compute_warp_parallelism's clamp
  const int sms = std::max(1, in.active_sms);
  const double per_sm_bw_max =
      static_cast<double>(arch.total_banks()) /
      std::max(1.0, bank_service_floor(arch)) / sms;
  const double per_load =
      std::min(amat_min, kDpmMin / std::max(1e-12, per_sm_bw_max)) +
      queue_delay_floor();
  return std::max(0.0, in.load_insts_lb) / sms * per_load;
}

}  // namespace gpuhms
