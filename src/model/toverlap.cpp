#include "model/toverlap.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "math/linreg.hpp"

namespace gpuhms {

std::vector<double> ToverlapModel::features(const PlacementEvents& ev,
                                            double warps_per_sm) {
  const double r = std::max(1.0, ev.total_mem_events());
  std::vector<double> x(kNumFeatures, 0.0);
  x[0] = static_cast<double>(ev.l2_misses + ev.global_transactions) / r;
  x[1] = static_cast<double>(ev.const_misses + ev.const_requests) / r;
  x[2] = static_cast<double>(ev.tex_misses + ev.tex_requests) / r;
  x[3] = static_cast<double>(ev.shared_conflicts + ev.shared_requests) / r;
  x[4] = static_cast<double>(ev.row_misses + ev.row_conflicts) / r;
  x[5] = warps_per_sm / 64.0;  // scaled to the Kepler resident-warp limit
  x[6] = 1.0;
  return x;
}

bool ToverlapModel::train(const std::vector<std::vector<double>>& xs,
                          std::span<const double> ys, double ridge) {
  GPUHMS_CHECK(xs.size() == ys.size());
  GPUHMS_CHECK(!xs.empty());
  Matrix m(xs.size(), kNumFeatures);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    GPUHMS_CHECK(xs[i].size() == kNumFeatures);
    for (std::size_t j = 0; j < kNumFeatures; ++j) m.at(i, j) = xs[i][j];
  }
  auto beta = least_squares(m, ys, ridge);
  if (!beta) return false;
  coef_ = std::move(*beta);
  trained_ = true;
  return true;
}

void ToverlapModel::set_coefficients(std::vector<double> coef) {
  GPUHMS_CHECK(coef.size() == kNumFeatures);
  coef_ = std::move(coef);
  trained_ = true;
}

double ToverlapModel::overlap_ratio(const PlacementEvents& ev,
                                    double warps_per_sm) const {
  const auto x = features(ev, warps_per_sm);
  const double ratio = dot(x, coef_);
  // Overlap cannot exceed T_mem itself and a (mildly) negative ratio lets
  // the regression absorb model underestimation on the training set.
  return std::clamp(ratio, -0.5, 1.0);
}

}  // namespace gpuhms
