// T_comp: computation cost of a data placement (Sec. III-B, Eq. 2/13-16).
#pragma once

#include "arch/gpu_arch.hpp"
#include "model/instruction_counter.hpp"
#include "model/warp_parallelism.hpp"

namespace gpuhms {

struct TcompInputs {
  InstructionEstimate inst;     // issued instructions (Sec. III-B)
  double total_warps = 1.0;
  int active_sms = 1;
  double itilp = 1.0;           // from compute_warp_parallelism
  double w_serial = 0.0;        // Eq. 16 — assumed placement-invariant,
                                // profiled on the sample placement
};

// Eq. 2: (#inst x #total_warps / #active_SMs) x effective_throughput
//        + W_serial,  with effective_throughput = avg_inst_lat / ITILP.
double tcomp(const TcompInputs& in, const GpuArch& arch);

// Admissible floor on Eq. 2 for branch-and-bound search, given a floor on
// the kernel-wide issued-instruction count: effective throughput is clamped
// at 1 cycle per issued instruction (Eq. 13 caps ITILP at avg_inst_lat) and
// W_serial >= 0, so T_comp >= issued / active_SMs regardless of placement.
double tcomp_floor(double issued_insts_lb, int active_sms);

}  // namespace gpuhms
