#include "model/queuing.hpp"

#include <algorithm>

namespace gpuhms {

double kingman_queue_delay(const GG1Bank& bank, double rho_max) {
  if (bank.tau_a <= 0.0 || bank.tau_s <= 0.0) return 0.0;
  const double rho = std::min(bank.rho(), rho_max);
  const double variability = (bank.ca() + bank.cs()) / 2.0;
  return variability * (rho / (1.0 - rho)) * bank.tau_a;
}

double mm1_queue_delay(const GG1Bank& bank, double rho_max) {
  if (bank.tau_a <= 0.0 || bank.tau_s <= 0.0) return 0.0;
  const double rho = std::min(bank.rho(), rho_max);
  return (rho / (1.0 - rho)) * bank.tau_s;
}

std::vector<GG1Bank> build_bank_inputs(const PlacementEvents& ev,
                                       double tick_to_cycles) {
  std::vector<GG1Bank> out;
  out.reserve(ev.banks.size());
  for (const BankStream& s : ev.banks) {
    GG1Bank b;
    if (s.count > 0) {
      b.tau_a = s.interarrival.mean() * tick_to_cycles;
      b.sigma_a = s.interarrival.stddev() * tick_to_cycles;
      b.tau_s = s.service.mean();
      b.sigma_s = s.service.stddev();
      b.lambda = b.tau_a > 0.0 ? 1.0 / b.tau_a : 0.0;
      // A bank touched once has no inter-arrival sample; treat it as
      // unloaded (no queuing).
      if (s.interarrival.count() == 0) {
        b.tau_a = 0.0;
        b.sigma_a = 0.0;
        b.lambda = 0.0;
      }
    }
    out.push_back(b);
  }
  return out;
}

namespace {

template <typename DelayFn>
QueuingResult aggregate_banks(const std::vector<GG1Bank>& banks,
                              double rho_max, DelayFn&& delay) {
  QueuingResult r;
  double weight_sum = 0.0;
  for (const GG1Bank& b : banks) {
    if (b.tau_s <= 0.0) continue;
    // Banks with a single request contribute their service time with a
    // nominal weight so sparse kernels still produce a latency.
    const double w = b.lambda > 0.0 ? b.lambda : 1e-9;
    const double wq = delay(b, rho_max);
    r.dram_lat += w * (wq + b.tau_s);
    r.avg_queue_delay += w * wq;
    r.avg_service += w * b.tau_s;
    weight_sum += w;
  }
  if (weight_sum > 0.0) {
    r.dram_lat /= weight_sum;
    r.avg_queue_delay /= weight_sum;
    r.avg_service /= weight_sum;
  }
  return r;
}

}  // namespace

QueuingResult dram_latency_gg1(const std::vector<GG1Bank>& banks,
                               double rho_max) {
  return aggregate_banks(banks, rho_max, [](const GG1Bank& b, double rm) {
    return kingman_queue_delay(b, rm);
  });
}

QueuingResult dram_latency_mm1(const std::vector<GG1Bank>& banks,
                               double rho_max) {
  return aggregate_banks(banks, rho_max, [](const GG1Bank& b, double rm) {
    return mm1_queue_delay(b, rm);
  });
}

double dram_latency_constant(const PlacementEvents& ev, const GpuArch& arch) {
  const double total = static_cast<double>(ev.row_hits + ev.row_misses +
                                           ev.row_conflicts);
  if (total == 0.0) {
    return static_cast<double>(arch.dram.row_miss_service);
  }
  const double hit_r = static_cast<double>(ev.row_hits) / total;
  const double miss_r = static_cast<double>(ev.row_misses) / total;
  const double conf_r = static_cast<double>(ev.row_conflicts) / total;
  return hit_r * static_cast<double>(arch.dram.row_hit_service) +
         miss_r * static_cast<double>(arch.dram.row_miss_service) +
         conf_r * static_cast<double>(arch.dram.row_conflict_service);
}

}  // namespace gpuhms
