#include "model/queuing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fault_injection.hpp"
#include "common/obs.hpp"

namespace gpuhms {

namespace {

// A bank whose moments are usable by the paper's Eq. 9 as written. Banks
// that fail this (possible only with caller-built GG1Bank values or fault
// injection — build_bank_inputs always produces well-formed banks) take the
// clamped degenerate path below instead of propagating NaN/inf.
bool well_formed(const GG1Bank& b) {
  return std::isfinite(b.tau_a) && std::isfinite(b.tau_s) &&
         std::isfinite(b.sigma_a) && std::isfinite(b.sigma_s) &&
         std::isfinite(b.lambda) && b.sigma_a >= 0.0 && b.sigma_s >= 0.0 &&
         b.tau_a >= 0.0 && b.lambda >= 0.0 &&
         // tau_a == 0 is well-formed only as the "unloaded single-touch
         // bank" marker (lambda == 0); with a nonzero arrival rate it means
         // an infinitely loaded bank.
         (b.tau_a > 0.0 || b.lambda == 0.0);
}

// Sanitized coefficients of variation for the degenerate path: negative and
// non-finite moments contribute zero variability rather than poisoning the
// delay.
double safe_cv(double sigma, double tau) {
  if (!std::isfinite(sigma) || !std::isfinite(tau) || sigma <= 0.0 ||
      tau <= 0.0)
    return 0.0;
  return sigma / tau;
}

// Delay of a degenerate bank, pinned at the rho_max saturation point: the
// inter-arrival time that *would* produce rho_max (tau_s / rho_max) feeds
// the requested formula. Finite by construction.
double saturated_delay(const GG1Bank& b, double rho_max, bool kingman) {
  if (!std::isfinite(b.tau_s) || b.tau_s <= 0.0) return 0.0;
  const double rho_term = rho_max / (1.0 - rho_max);
  if (!kingman) return rho_term * b.tau_s;  // M/M/1
  const double tau_a_eff = b.tau_s / rho_max;
  const double variability =
      (safe_cv(b.sigma_a, tau_a_eff) + safe_cv(b.sigma_s, b.tau_s)) / 2.0;
  return variability * rho_term * tau_a_eff;
}

void flag(bool* saturated) {
  GPUHMS_COUNTER_ADD("queuing.saturation_events", 1);
  if (saturated) *saturated = true;
}

}  // namespace

double kingman_queue_delay(const GG1Bank& bank, double rho_max,
                           bool* saturated) {
  if (!well_formed(bank)) {
    flag(saturated);
    return saturated_delay(bank, rho_max, /*kingman=*/true);
  }
  if (bank.tau_a <= 0.0 || bank.tau_s <= 0.0) return 0.0;
  if (bank.rho() >= rho_max) flag(saturated);
  const double rho = std::min(bank.rho(), rho_max);
  const double variability = (bank.ca() + bank.cs()) / 2.0;
  return variability * (rho / (1.0 - rho)) * bank.tau_a;
}

double mm1_queue_delay(const GG1Bank& bank, double rho_max, bool* saturated) {
  if (!well_formed(bank)) {
    flag(saturated);
    return saturated_delay(bank, rho_max, /*kingman=*/false);
  }
  if (bank.tau_a <= 0.0 || bank.tau_s <= 0.0) return 0.0;
  if (bank.rho() >= rho_max) flag(saturated);
  const double rho = std::min(bank.rho(), rho_max);
  return (rho / (1.0 - rho)) * bank.tau_s;
}

std::vector<GG1Bank> build_bank_inputs(const PlacementEvents& ev,
                                       double tick_to_cycles) {
  std::vector<GG1Bank> out;
  out.reserve(ev.banks.size());
  for (const BankStream& s : ev.banks) {
    GG1Bank b;
    if (s.count > 0) {
      b.tau_a = s.interarrival.mean() * tick_to_cycles;
      b.sigma_a = s.interarrival.stddev() * tick_to_cycles;
      b.tau_s = s.service.mean();
      b.sigma_s = s.service.stddev();
      b.lambda = b.tau_a > 0.0 ? 1.0 / b.tau_a : 0.0;
      // A bank touched once has no inter-arrival sample; treat it as
      // unloaded (no queuing).
      if (s.interarrival.count() == 0) {
        b.tau_a = 0.0;
        b.sigma_a = 0.0;
        b.lambda = 0.0;
      }
    }
    out.push_back(b);
  }
  if (fault::enabled()) {
    // Poison the first loaded bank: forced NaN moments or a driven-past-
    // saturation arrival rate. Exercises the degenerate-input clamps above
    // end to end (the prediction must stay finite, with `saturated` set).
    for (GG1Bank& b : out) {
      if (b.tau_s <= 0.0 || b.lambda <= 0.0) continue;
      if (fault::should_fire("queuing.nan"))
        b.sigma_a = std::numeric_limits<double>::quiet_NaN();
      if (fault::should_fire("queuing.saturate")) {
        b.tau_a = 0.0;  // zero inter-arrival time at a nonzero arrival rate
        b.sigma_a = 0.0;
      }
      break;
    }
  }
  return out;
}

namespace {

template <typename DelayFn>
QueuingResult aggregate_banks(const std::vector<GG1Bank>& banks,
                              double rho_max, DelayFn&& delay) {
  QueuingResult r;
  double weight_sum = 0.0;
  const bool observe = obs::metrics_active();
  for (const GG1Bank& b : banks) {
    // Per-bank utilization profile (percent, log2-bucketed); degenerate
    // rho values are clamped into the histogram's meaningful range.
    if (observe && b.tau_s > 0.0) {
      const double rho = b.rho();
      const std::uint64_t pct =
          std::isfinite(rho)
              ? static_cast<std::uint64_t>(std::clamp(rho, 0.0, 10.0) * 100.0)
              : 1000;
      GPUHMS_HISTOGRAM_RECORD("queuing.bank_utilization_pct", pct);
    }
    if (std::isnan(b.tau_s)) {
      // A NaN service time carries no usable information at all; flag it
      // and move on rather than letting it zero the whole aggregate.
      r.saturated = true;
      continue;
    }
    if (b.tau_s <= 0.0) continue;
    // Banks with a single request contribute their service time with a
    // nominal weight so sparse kernels still produce a latency. A degenerate
    // arrival rate gets the same nominal weight.
    const double w =
        std::isfinite(b.lambda) && b.lambda > 0.0 ? b.lambda : 1e-9;
    const double wq = delay(b, rho_max, &r.saturated);
    r.dram_lat += w * (wq + b.tau_s);
    r.avg_queue_delay += w * wq;
    r.avg_service += w * b.tau_s;
    weight_sum += w;
  }
  if (weight_sum > 0.0) {
    r.dram_lat /= weight_sum;
    r.avg_queue_delay /= weight_sum;
    r.avg_service /= weight_sum;
  }
  return r;
}

}  // namespace

QueuingResult dram_latency_gg1(const std::vector<GG1Bank>& banks,
                               double rho_max) {
  return aggregate_banks(banks, rho_max,
                         [](const GG1Bank& b, double rm, bool* sat) {
                           return kingman_queue_delay(b, rm, sat);
                         });
}

QueuingResult dram_latency_mm1(const std::vector<GG1Bank>& banks,
                               double rho_max) {
  return aggregate_banks(banks, rho_max,
                         [](const GG1Bank& b, double rm, bool* sat) {
                           return mm1_queue_delay(b, rm, sat);
                         });
}

double bank_service_floor(const GpuArch& arch) {
  return static_cast<double>(arch.dram.row_hit_service);
}

double dram_latency_constant(const PlacementEvents& ev, const GpuArch& arch) {
  const double total = static_cast<double>(ev.row_hits + ev.row_misses +
                                           ev.row_conflicts);
  if (total == 0.0) {
    return static_cast<double>(arch.dram.row_miss_service);
  }
  const double hit_r = static_cast<double>(ev.row_hits) / total;
  const double miss_r = static_cast<double>(ev.row_misses) / total;
  const double conf_r = static_cast<double>(ev.row_conflicts) / total;
  return hit_r * static_cast<double>(arch.dram.row_hit_service) +
         miss_r * static_cast<double>(arch.dram.row_miss_service) +
         conf_r * static_cast<double>(arch.dram.row_conflict_service);
}

}  // namespace gpuhms
