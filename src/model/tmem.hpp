// T_mem: memory cost of a data placement (Sec. III-C, Eq. 4-10).
//
// The distinguishing ingredients versus prior models:
//   * DRAM latency is NOT a constant — it comes from per-bank G/G/1 queues
//     (Kingman, Eq. 9) over the request distribution derived from the
//     detected address mapping, with service times classified by row-buffer
//     outcome (Eq. 8);
//   * AMAT (Eq. 5) combines the L2-miss-weighted DRAM latency, the uniform
//     cache hit latency, and the shared-memory fraction.
#pragma once

#include "arch/gpu_arch.hpp"
#include "model/queuing.hpp"
#include "model/trace_analysis.hpp"
#include "model/warp_parallelism.hpp"

namespace gpuhms {

enum class QueueDiscipline {
  GG1,  // Kingman, the paper's choice
  MM1,  // Markovian alternative (for the Sec. III-C3 comparison)
};

struct TmemOptions {
  // Ablations: without the queuing model, DRAM latency degenerates to the
  // unloaded (microbenchmark) constant, as prior work assumes.
  bool queuing_model = true;
  // Without row-buffer modeling the constant is the unloaded row-miss
  // latency; with it (but no queue) the Eq. 8 outcome mix is used.
  bool row_buffer_model = true;
  QueueDiscipline discipline = QueueDiscipline::GG1;
  double rho_max = 0.95;
};

struct TmemResult {
  double t_mem = 0.0;
  double amat = 0.0;          // Eq. 5
  double dram_lat = 0.0;      // Eq. 7 (or the constant fallback)
  double queue_delay = 0.0;
  double miss_ratio = 0.0;    // DRAM requests / off-chip+shared requests
  double shmem_ratio = 0.0;
  double effective_requests_per_sm = 0.0;  // Eq. 17
  // Propagated from QueuingResult::saturated: dram_lat (and everything
  // downstream of it) is a clamped saturation floor, not a faithful G/G/1
  // estimate. Always false for the non-queuing ablations.
  bool queue_saturated = false;
};

struct TmemInputs {
  const PlacementEvents* events = nullptr;
  double total_warps = 1.0;
  int active_sms = 1;
  double n_warps_per_sm = 1.0;
  double issued_per_warp = 1.0;   // for MWP/CWP (Appendix)
  // Converts analysis instruction ticks to cycles (sample-calibrated).
  double tick_to_cycles = 1.0;
};

TmemResult tmem(const TmemInputs& in, const GpuArch& arch,
                const TmemOptions& opts = {});

// --- Admissible T_mem floor (branch-and-bound search) -----------------------
struct TmemFloorInputs {
  // Floor on the kernel-wide warp-level load count for *any* placement
  // (TraceSkeleton::base_load_insts: lowering never drops a load, staging
  // preambles only add more).
  double load_insts_lb = 0.0;
  int active_sms = 1;
};

// Placement-independent lower bound on tmem().t_mem (Eq. 4-8 relaxed to zero
// queuing wait, see queue_delay_floor). Derivation in tmem.cpp. This term is
// provable but weak — for real kernels the T_comp instruction floor
// dominates the combined bound; it exists so the bound stays sound for
// degenerate, nearly compute-free kernels.
double tmem_floor(const TmemFloorInputs& in, const GpuArch& arch);

}  // namespace gpuhms
