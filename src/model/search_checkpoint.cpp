#include "model/search_checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "common/hashing.hpp"
#include "common/journal.hpp"
#include "common/obs.hpp"

namespace gpuhms {

namespace {

constexpr std::uint32_t kJournalVersion = 1;
constexpr char kRecHeader = 'H';
constexpr char kRecCheckpoint = 'C';
constexpr char kRecFinal = 'F';

// --- little-endian payload encoding ------------------------------------------
// The journal layer frames and checksums; this layer only lays out fields in
// a fixed order. Doubles travel as bit patterns so a resumed run compares
// bit-identical to an uninterrupted one.

struct Enc {
  std::string buf;

  void u8(std::uint8_t v) { buf.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf.append(s.data(), s.size());
  }
  void spaces(const std::vector<MemSpace>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (MemSpace s : v) u8(static_cast<std::uint8_t>(s));
  }
};

// Bounds-checked reader; every getter reports failure instead of reading
// past the payload, so a checksum-valid but logically corrupt record decodes
// to an error, never UB.
struct Dec {
  std::string_view buf;
  std::size_t off = 0;
  bool failed = false;

  bool need(std::size_t n) {
    if (buf.size() - off < n) {
      failed = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(buf[off++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[off + i]))
           << (8 * i);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[off + i]))
           << (8 * i);
    off += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s(buf.substr(off, n));
    off += n;
    return s;
  }
  std::vector<MemSpace> spaces() {
    const std::uint32_t n = u32();
    std::vector<MemSpace> v;
    if (!need(n)) return v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint8_t b = u8();
      if (b >= kAllMemSpaces.size()) {
        failed = true;
        return v;
      }
      v.push_back(static_cast<MemSpace>(b));
    }
    return v;
  }
  bool done() const { return !failed && off == buf.size(); }
};

std::string encode_checkpoint(const BnbCheckpoint& cp) {
  Enc e;
  e.u8(static_cast<std::uint8_t>(kRecCheckpoint));
  e.u8(cp.incumbent_valid ? 1 : 0);
  e.spaces(cp.incumbent);
  e.u64(cp.incumbent_cycles_bits);
  e.u64(cp.incumbent_updates);
  e.u64(cp.evaluated);
  e.u64(cp.nodes_expanded);
  e.u64(cp.pruned_subtrees);
  e.u64(cp.visits);
  e.u32(static_cast<std::uint32_t>(cp.stack_next.size()));
  for (std::uint32_t v : cp.stack_next) e.u32(v);
  e.u32(static_cast<std::uint32_t>(cp.pending.size()));
  for (const auto& p : cp.pending) e.spaces(p);
  return std::move(e.buf);
}

std::optional<BnbCheckpoint> decode_checkpoint(std::string_view payload) {
  Dec d{payload};
  d.u8();  // record type, already dispatched on
  BnbCheckpoint cp;
  cp.incumbent_valid = d.u8() != 0;
  cp.incumbent = d.spaces();
  cp.incumbent_cycles_bits = d.u64();
  cp.incumbent_updates = d.u64();
  cp.evaluated = d.u64();
  cp.nodes_expanded = d.u64();
  cp.pruned_subtrees = d.u64();
  cp.visits = d.u64();
  const std::uint32_t depth = d.u32();
  if (!d.need(static_cast<std::size_t>(depth) * 4)) return std::nullopt;
  cp.stack_next.reserve(depth);
  for (std::uint32_t i = 0; i < depth; ++i) cp.stack_next.push_back(d.u32());
  const std::uint32_t pending = d.u32();
  cp.pending.reserve(std::min<std::uint32_t>(pending, 4096));
  for (std::uint32_t i = 0; i < pending && !d.failed; ++i)
    cp.pending.push_back(d.spaces());
  if (!d.done()) return std::nullopt;
  return cp;
}

// The five interned prune_gate_reason literals of SearchResult; decoding
// maps back onto them so the field stays a static-lifetime const char*.
const char* intern_gate_reason(const std::string& s) {
  for (const char* known :
       {"off", "no-skeleton", "small-space", "gated-ineffective", "active"})
    if (s == known) return known;
  return "off";
}

std::string encode_result(const SearchResult& r) {
  Enc e;
  e.u8(static_cast<std::uint8_t>(kRecFinal));
  std::vector<MemSpace> placement;
  placement.reserve(r.placement.size());
  for (std::size_t a = 0; a < r.placement.size(); ++a)
    placement.push_back(r.placement.of(static_cast<int>(a)));
  e.spaces(placement);
  e.f64(r.predicted_cycles);
  e.u64(r.evaluated);
  e.u64(r.pruned);
  e.u64(r.prune_checks);
  e.f64(r.prune_bound_ratio);
  e.str(r.prune_gate_reason);
  e.u8(r.space_truncated ? 1 : 0);
  e.u64(r.space_skipped);
  e.u8(r.deadline_hit ? 1 : 0);
  e.u8(r.cancelled ? 1 : 0);
  e.u64(r.not_evaluated);
  e.f64(r.lower_bound);
  e.f64(r.optimality_gap);
  e.u8(r.proven_optimal ? 1 : 0);
  e.u64(r.nodes_expanded);
  e.u64(r.pruned_subtrees);
  e.u64(r.incumbent_updates);
  e.u8(r.beam_fallback ? 1 : 0);
  return std::move(e.buf);
}

std::optional<SearchResult> decode_result(std::string_view payload,
                                          std::size_t num_arrays) {
  Dec d{payload};
  d.u8();  // record type
  SearchResult r;
  const std::vector<MemSpace> placement = d.spaces();
  if (d.failed || placement.size() != num_arrays) return std::nullopt;
  r.placement = DataPlacement(placement);
  r.predicted_cycles = d.f64();
  r.evaluated = static_cast<std::size_t>(d.u64());
  r.pruned = static_cast<std::size_t>(d.u64());
  r.prune_checks = static_cast<std::size_t>(d.u64());
  r.prune_bound_ratio = d.f64();
  r.prune_gate_reason = intern_gate_reason(d.str());
  r.space_truncated = d.u8() != 0;
  r.space_skipped = d.u64();
  r.deadline_hit = d.u8() != 0;
  r.cancelled = d.u8() != 0;
  r.not_evaluated = static_cast<std::size_t>(d.u64());
  r.lower_bound = d.f64();
  r.optimality_gap = d.f64();
  r.proven_optimal = d.u8() != 0;
  r.nodes_expanded = static_cast<std::size_t>(d.u64());
  r.pruned_subtrees = static_cast<std::size_t>(d.u64());
  r.incumbent_updates = static_cast<std::size_t>(d.u64());
  r.beam_fallback = d.u8() != 0;
  if (!d.done()) return std::nullopt;
  return r;
}

std::string encode_header(std::uint64_t fingerprint) {
  Enc e;
  e.u8(static_cast<std::uint8_t>(kRecHeader));
  e.u32(kJournalVersion);
  e.u64(fingerprint);
  return std::move(e.buf);
}

// Appends 'C' records; append failures degrade to an un-journaled run (one
// stderr line, then silence) instead of poisoning the search itself —
// checkpoint durability is best-effort, result correctness is not.
class JournalSink : public BnbCheckpointSink {
 public:
  explicit JournalSink(journal::Writer* writer) : writer_(writer) {}

  void on_checkpoint(const BnbCheckpoint& state) override {
    if (failed_) return;
    const Status st = writer_->append(encode_checkpoint(state));
    if (!st.ok()) {
      failed_ = true;
      error_ = st.to_string();
      std::fprintf(stderr,
                   "gpuhms: checkpoint append to '%s' failed, journaling "
                   "disabled for this run: %s\n",
                   writer_->path().c_str(), error_.c_str());
      return;
    }
    ++written_;
  }

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  std::uint64_t written() const { return written_; }

 private:
  journal::Writer* writer_;
  bool failed_ = false;
  std::string error_;
  std::uint64_t written_ = 0;
};

}  // namespace

std::uint64_t search_journal_fingerprint(const Predictor& predictor,
                                         const SearchOptions& options) {
  Fnv1a h;
  const KernelInfo& k = predictor.kernel();
  h.mix(std::string_view(k.name));
  h.mix(k.num_blocks);
  h.mix(k.threads_per_block);
  h.mix(k.arrays.size());
  for (const ArrayDecl& a : k.arrays) {
    h.mix(std::string_view(a.name));
    h.mix(a.dtype);
    h.mix(a.elems);
    h.mix(a.width);
    h.mix(a.written);
    h.mix(a.shared_slice_elems);
    h.mix(a.default_space);
  }
  const GpuArch& arch = predictor.arch();
  h.mix(arch.num_sms);
  h.mix(arch.warp_size);
  h.mix(arch.max_warps_per_sm);
  h.mix(arch.max_blocks_per_sm);
  h.mix(arch.shared_banks);
  h.mix(arch.shared_capacity);
  h.mix(arch.constant_capacity);
  h.mix(arch.cache_line);
  h.mix(arch.l2_capacity);
  h.mix(arch.dram_channels);
  h.mix(arch.banks_per_channel);
  const ModelOptions& m = predictor.options();
  h.mix(m.detailed_instruction_counting);
  h.mix(m.queuing_model);
  h.mix(m.address_mapping);
  h.mix(m.row_buffer_model);
  h.mix(m.queue_discipline);
  h.mix(m.anchor_to_sample);
  if (predictor.has_sample())
    h.mix(std::string_view(predictor.sample_placement().to_string()));
  h.mix(options.node_budget);
  h.mix(options.beam_width);
  return h.digest();
}

StatusOr<SearchResult> try_resume_branch_and_bound(
    const Predictor& predictor, const SearchOptions& options,
    const std::string& journal_path, ResumeInfo* info) {
  ResumeInfo local_info;
  if (info == nullptr) info = &local_info;
  *info = ResumeInfo{};

  const std::string ctx = "resuming branch-and-bound search of kernel '" +
                          predictor.kernel().name + "' from journal '" +
                          journal_path + "'";
  if (!predictor.has_sample())
    return FailedPreconditionError(
               "predictor has no profiled sample; call try_profile_sample or "
               "try_set_sample first")
        .annotate(ctx);

  const std::uint64_t fp = search_journal_fingerprint(predictor, options);
  const std::size_t num_arrays = predictor.kernel().arrays.size();

  journal::Writer writer;
  std::optional<BnbCheckpoint> resume_state;
  if (journal::exists(journal_path)) {
    GPUHMS_ASSIGN_OR_RETURN(journal::ReadResult contents,
                            [&]() -> StatusOr<journal::ReadResult> {
                              auto r = journal::read_records(journal_path);
                              if (!r.ok()) return r.status().annotate(ctx);
                              return r;
                            }());
    if (contents.tail_truncated) {
      // Detected, logged, truncated — the recovery contract for a torn or
      // corrupted tail. Everything before it stays usable.
      std::fprintf(stderr,
                   "gpuhms: journal '%s': %s; truncating to %llu valid "
                   "bytes\n",
                   journal_path.c_str(), contents.tail_error.c_str(),
                   static_cast<unsigned long long>(contents.valid_bytes));
      info->tail_truncated = true;
    }
    if (contents.records.empty())
      return DataLossError("journal '" + journal_path +
                           "' holds no complete record (missing header)")
          .annotate(ctx);
    {
      Dec d{contents.records.front()};
      if (d.u8() != static_cast<std::uint8_t>(kRecHeader))
        return DataLossError("journal '" + journal_path +
                             "' does not start with a header record")
            .annotate(ctx);
      const std::uint32_t version = d.u32();
      if (version != kJournalVersion)
        return FailedPreconditionError(
                   "journal '" + journal_path + "' has format version " +
                   std::to_string(version) + ", this build reads " +
                   std::to_string(kJournalVersion))
            .annotate(ctx);
      const std::uint64_t bound_fp = d.u64();
      if (!d.done() || bound_fp != fp)
        return FailedPreconditionError(
                   "journal '" + journal_path +
                   "' belongs to a different search (binding fingerprint "
                   "mismatch: kernel, arch, model options, sample placement, "
                   "or node_budget/beam_width differ)")
            .annotate(ctx);
    }
    for (std::size_t i = 1; i < contents.records.size(); ++i) {
      const std::string& rec = contents.records[i];
      if (rec.empty())
        return DataLossError("journal '" + journal_path +
                             "' holds an empty record")
            .annotate(ctx);
      if (rec[0] == kRecFinal) {
        std::optional<SearchResult> final = decode_result(rec, num_arrays);
        if (!final)
          return DataLossError("journal '" + journal_path +
                               "' holds an undecodable final-result record")
              .annotate(ctx);
        info->already_complete = true;
        info->checkpoints_read = contents.records.size() - 2;
        return *final;
      }
      if (rec[0] == kRecCheckpoint) {
        std::optional<BnbCheckpoint> cp = decode_checkpoint(rec);
        if (!cp)
          return DataLossError("journal '" + journal_path +
                               "' holds an undecodable checkpoint record " +
                               std::to_string(i))
              .annotate(ctx);
        resume_state = std::move(*cp);  // last one wins
        ++info->checkpoints_read;
        continue;
      }
      return DataLossError("journal '" + journal_path +
                           "' holds a record of unknown type " +
                           std::to_string(static_cast<int>(rec[0])))
          .annotate(ctx);
    }
    GPUHMS_ASSIGN_OR_RETURN(
        writer, [&]() -> StatusOr<journal::Writer> {
          auto w = journal::Writer::open_for_append(journal_path,
                                                    contents.valid_bytes);
          if (!w.ok()) return w.status().annotate(ctx);
          return w;
        }());
  } else {
    GPUHMS_ASSIGN_OR_RETURN(writer, [&]() -> StatusOr<journal::Writer> {
      auto w = journal::Writer::create(journal_path);
      if (!w.ok()) return w.status().annotate(ctx);
      return w;
    }());
    GPUHMS_RETURN_IF_ERROR(writer.append(encode_header(fp)).annotate(ctx));
  }

  JournalSink sink(&writer);
  SearchOptions run = options;
  run.checkpoint_sink = &sink;
  run.resume_from = resume_state ? &*resume_state : nullptr;
  if (resume_state) {
    info->resumed = true;
    info->resumed_visits = resume_state->visits;
  }

  GPUHMS_ASSIGN_OR_RETURN(SearchResult result,
                          try_search_branch_and_bound(predictor, run));

  // A finished walk is terminal: seal the journal with the full result so
  // the next resume returns it verbatim. Deadline/cancel stops stay open —
  // their stop-point checkpoint is the resume point.
  if (!result.deadline_hit && !result.cancelled && !sink.failed()) {
    const Status st = writer.append(encode_result(result));
    if (!st.ok()) {
      info->journal_write_failed = true;
      info->journal_write_error = st.to_string();
      std::fprintf(stderr,
                   "gpuhms: sealing journal '%s' failed: %s\n",
                   journal_path.c_str(), st.to_string().c_str());
    }
  }
  if (sink.failed()) {
    info->journal_write_failed = true;
    info->journal_write_error = sink.error();
  }
  info->checkpoints_written = sink.written();
  GPUHMS_COUNTER_ADD("search.journal_checkpoints", sink.written());
  return result;
}

}  // namespace gpuhms
