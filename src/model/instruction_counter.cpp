#include "model/instruction_counter.hpp"

#include <algorithm>

namespace gpuhms {

InstructionEstimate estimate_issued_instructions(
    const ProfileCounters& sample_profile, const PlacementEvents& sample_ev,
    const PlacementEvents& target_ev, std::uint64_t total_warps,
    const InstructionCountOptions& opts) {
  InstructionEstimate e;
  const double warps = static_cast<double>(std::max<std::uint64_t>(1, total_warps));

  const double exec_sample =
      static_cast<double>(sample_profile.inst_executed);
  const double replays_sample =
      static_cast<double>(sample_profile.replays_total());

  if (!opts.detailed_counting) {
    e.executed_total = exec_sample;
    e.replays_total = replays_sample;
    e.issued_total = exec_sample + replays_sample;
    e.issued_per_warp = e.issued_total / warps;
    return e;
  }

  // Addressing-mode + staging difference from the two trace analyses.
  e.addr_mode_delta = static_cast<double>(target_ev.insts_executed) -
                      static_cast<double>(sample_ev.insts_executed);
  e.executed_total = std::max(0.0, exec_sample + e.addr_mode_delta);

  // Eq. 3: swap causes (1)-(4) between placements.
  e.replay_delta = static_cast<double>(target_ev.replays_1_4()) -
                   static_cast<double>(sample_ev.replays_1_4());
  e.replays_total = std::max(0.0, replays_sample + e.replay_delta);

  e.issued_total = e.executed_total + e.replays_total;
  e.issued_per_warp = e.issued_total / warps;
  return e;
}

}  // namespace gpuhms
