// T_overlap: empirical model of computation/memory overlap (Sec. III-D,
// Eq. 11-12).
//
// T_overlap_ratio is a linear function of memory-event *ratios* — one term
// group per memory space (requests + misses/conflicts), a row-buffer term,
// the resident warp count, and a constant — trained by linear regression on
// a set of placements (Table IV training suite). Predicting uses the events
// from the target placement's trace analysis:  T_overlap = ratio x T_mem.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/trace_analysis.hpp"

namespace gpuhms {

class ToverlapModel {
 public:
  static constexpr std::size_t kNumFeatures = 7;

  // Feature vector of Eq. 11: [e_g, e_c, e_t, e_s, e_r, #warps, 1], where
  // e_* are event counts normalized by total memory events.
  static std::vector<double> features(const PlacementEvents& ev,
                                      double warps_per_sm);

  // Train coefficients by ridge-regularized least squares on
  // (features, measured overlap ratio) pairs. Returns false (and keeps the
  // previous coefficients) when the system is singular.
  bool train(const std::vector<std::vector<double>>& xs,
             std::span<const double> ys, double ridge = 1e-3);

  bool trained() const { return trained_; }
  const std::vector<double>& coefficients() const { return coef_; }
  void set_coefficients(std::vector<double> coef);

  // Predicted T_overlap_ratio, clamped to a physically meaningful range.
  double overlap_ratio(const PlacementEvents& ev, double warps_per_sm) const;

 private:
  std::vector<double> coef_ = std::vector<double>(kNumFeatures, 0.0);
  bool trained_ = false;
};

}  // namespace gpuhms
