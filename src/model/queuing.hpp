// G/G/1 queuing model of the banked GDDR memory system (Sec. III-C3).
//
// Each memory bank is a server with a general arrival process and a general
// service process (service times cluster on the row-buffer hit / miss /
// conflict latencies, arrivals are bursty on GPUs — c_a up to ~2.2 in the
// paper's GPGPU-Sim study). The average queuing delay uses Kingman's
// approximation exactly as the paper writes it (Eq. 9):
//
//     W_q ≈ ((c_a + c_s) / 2) * (rho / (1 - rho)) * tau_a
//
// (Note: the paper's form uses c, not c^2, and tau_a; since rho*tau_a =
// tau_s this matches the textbook heavy-traffic form up to the variability
// exponent. We implement the paper's equation.)
//
// Robustness: the delay functions never return NaN/inf. Degenerate inputs
// (zero inter-arrival time with a nonzero arrival rate, negative or
// non-finite moments — all possible with caller-built GG1Bank values or
// under fault injection) are clamped to the rho_max saturation point, and
// the aggregate QueuingResult carries a `saturated` flag so the caller can
// tell a trustworthy latency from a clamped one.
#pragma once

#include <vector>

#include "arch/gpu_arch.hpp"
#include "model/trace_analysis.hpp"

namespace gpuhms {

struct GG1Bank {
  double tau_a = 0.0;    // mean inter-arrival time (cycles)
  double sigma_a = 0.0;  // stddev of inter-arrival time
  double tau_s = 0.0;    // mean service time (cycles)
  double sigma_s = 0.0;  // stddev of service time
  double lambda = 0.0;   // arrival rate (1 / tau_a)

  double ca() const { return tau_a > 0.0 ? sigma_a / tau_a : 0.0; }
  double cs() const { return tau_s > 0.0 ? sigma_s / tau_s : 0.0; }
  double rho() const { return tau_a > 0.0 ? tau_s / tau_a : 0.0; }
};

// Kingman's approximation (paper Eq. 9). rho is clamped to rho_max: a bank
// driven at or beyond saturation has unbounded G/G/1 delay, while the real
// system throttles arrivals through finite warp counts. Always finite and
// non-negative; `saturated` (when provided) is set to true if the bank was
// clamped (rho >= rho_max) or its inputs were degenerate, left unchanged
// otherwise.
double kingman_queue_delay(const GG1Bank& bank, double rho_max = 0.95,
                           bool* saturated = nullptr);

// The Markovian alternative the paper argues *against* (Sec. III-C3): an
// M/M/1 queue, W_q = (rho / (1 - rho)) * tau_s, which assumes exponential
// arrivals and service — i.e. ignores the measured variability entirely.
// Kept for the comparison bench that reproduces the paper's argument.
// Same clamping/saturation contract as kingman_queue_delay.
double mm1_queue_delay(const GG1Bank& bank, double rho_max = 0.95,
                       bool* saturated = nullptr);

struct QueuingResult {
  double dram_lat = 0.0;        // Eq. 7: lambda-weighted per-bank latency
  double avg_queue_delay = 0.0; // lambda-weighted W_q
  double avg_service = 0.0;     // lambda-weighted service time (Eq. 8 aggregate)
  // At least one contributing bank ran at or past the rho_max clamp, or had
  // degenerate (zero/negative/non-finite) queuing inputs: the latencies
  // above are a saturation floor, not a faithful G/G/1 estimate.
  bool saturated = false;
};

// Builds per-bank G/G/1 inputs from the trace analysis bank streams.
// `tick_to_cycles` converts the analysis instruction-slot clock into cycles
// (calibrated from the sample placement: measured time / trace ticks).
std::vector<GG1Bank> build_bank_inputs(const PlacementEvents& ev,
                                       double tick_to_cycles);

// Eq. 6/7: per-bank latency = W_q + service, aggregated over banks weighted
// by arrival rate. The result is always finite.
QueuingResult dram_latency_gg1(const std::vector<GG1Bank>& banks,
                               double rho_max = 0.95);

// Same aggregation with M/M/1 per-bank delays.
QueuingResult dram_latency_mm1(const std::vector<GG1Bank>& banks,
                               double rho_max = 0.95);

// The constant-latency alternative the ablations compare against
// (Sec. V-B / Fig. 9 "no queuing model"): unloaded average service by
// row-buffer outcome mix, no queuing delay (Eq. 8 only).
double dram_latency_constant(const PlacementEvents& ev, const GpuArch& arch);

// --- Admissible relaxations for lower bounds (branch-and-bound search) ------
// Eq. 9 with zero contention: W_q >= 0 for every G/G/1 arrival/service
// process (Kingman's delay is a product of non-negative factors, and the
// saturation clamp only raises it), so a lower bound may drop the queuing
// delay entirely. Named so the relaxation is visible at call sites.
constexpr double queue_delay_floor() { return 0.0; }

// Floor on the Eq. 8 unloaded bank service time: every row-buffer outcome
// costs at least the row-hit service, and dram_latency_constant's
// no-DRAM-traffic fallback is the even larger row-miss constant.
double bank_service_floor(const GpuArch& arch);

}  // namespace gpuhms
