// MWP / CWP / ITMLP / ITILP formulation (paper Appendix, Eq. 13-19, after
// Hong & Kim [6] and Sim et al. [7]), shared by our T_comp/T_mem models and
// the baseline reimplementations.
#pragma once

#include <algorithm>
#include <cmath>

#include "arch/gpu_arch.hpp"

namespace gpuhms {

struct WarpParallelismInputs {
  double n_warps = 1.0;              // resident warps per SM
  double issued_per_warp = 1.0;      // issue slots per warp (whole kernel)
  double mem_insts_per_warp = 0.0;   // warp-level memory instructions
  double transactions_per_mem = 1.0; // avg transactions per memory inst
  double mem_lat = 1.0;              // AMAT seen by a request (cycles)
  double mlp = 1.0;                  // per-warp memory-level parallelism
  double ilp = 1.0;                  // per-warp instruction-level parallelism
  double unloaded_service = 400.0;   // avg unloaded DRAM service (cycles)
  // DRAM requests per memory instruction (only misses stress the DRAM
  // bandwidth; cache-served transactions go through the LSU/L2 ports).
  double dram_per_mem = 1.0;
  int active_sms = 1;
  int total_banks = 96;
};

struct WarpParallelism {
  double mwp = 1.0;          // memory warp parallelism
  double cwp = 1.0;          // computation warp parallelism
  double mwp_peak_bw = 1.0;  // bandwidth cap on MWP
  double itmlp = 1.0;        // Eq. 18
  double itilp = 1.0;        // Eq. 14
};

inline WarpParallelism compute_warp_parallelism(
    const WarpParallelismInputs& in, const GpuArch& arch) {
  WarpParallelism out;
  const double n = std::max(1.0, in.n_warps);
  const double mem_per_warp = std::max(1e-9, in.mem_insts_per_warp);

  // Issue slots between two consecutive memory instructions of one warp.
  const double comp_cycles = std::max(1.0, in.issued_per_warp / mem_per_warp);
  const double mem_cycles = std::max(1.0, in.mem_lat);

  // Departure delay: back-to-back requests are spaced by their coalesced
  // transaction count (one transaction per cycle through the LSU).
  const double departure = std::max(1.0, in.transactions_per_mem);
  const double mwp_no_bw = mem_cycles / departure;

  // Bandwidth cap: the DRAM fabric sustains total_banks / service *DRAM*
  // requests per cycle, shared by the active SMs (Hong & Kim's MWP_peak_bw
  // rewritten in our units). Only the fraction of a memory instruction's
  // transactions that miss into DRAM presses on this limit — cache-served
  // traffic flows through the far wider LSU/L2 ports.
  const double peak_dram_per_cycle =
      static_cast<double>(in.total_banks) /
      std::max(1.0, in.unloaded_service);
  const double per_sm_bw =
      peak_dram_per_cycle / std::max(1, in.active_sms);
  out.mwp_peak_bw =
      std::max(1.0, per_sm_bw * mem_cycles / std::max(1e-3, in.dram_per_mem));

  out.mwp = std::max(1.0, std::min({mwp_no_bw, out.mwp_peak_bw, n}));
  out.cwp = std::max(1.0, std::min((mem_cycles + comp_cycles) / comp_cycles, n));

  // Eq. 19 / 18.
  const double mwp_cp = std::min(std::max(1.0, out.cwp - 1.0), out.mwp);
  out.itmlp = std::max(1.0, std::min(in.mlp * mwp_cp, out.mwp_peak_bw));

  // Eq. 14 / 15 (warp_size == SIMD width: one slot issues a full warp).
  const double itilp_max =
      static_cast<double>(arch.avg_inst_lat) /
      (static_cast<double>(arch.warp_size) / static_cast<double>(arch.simd_width));
  out.itilp = std::max(1.0, std::min(in.ilp * n, itilp_max));
  return out;
}

}  // namespace gpuhms
