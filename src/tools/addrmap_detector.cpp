#include "tools/addrmap_detector.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"

namespace gpuhms {

AddressMapDetector::AddressMapDetector(const GpuArch& arch,
                                       AddressMapping mapping, int max_bit,
                                       int trials, std::uint64_t seed)
    : arch_(&arch), mapping_(std::move(mapping)), max_bit_(max_bit),
      trials_(trials), rng_(seed) {
  GPUHMS_CHECK(max_bit_ > 0 && max_bit_ <= 63);
  GPUHMS_CHECK(trials_ >= 1);
}

AddressMapDetection AddressMapDetector::run() {
  // Latency of the *second* access per (bit, trial): majority vote per bit.
  std::vector<std::uint64_t> bit_latency(static_cast<std::size_t>(max_bit_));
  const std::uint64_t addr_mask =
      (max_bit_ >= 63 ? ~0ull : (1ull << max_bit_) - 1);

  for (int bit = 0; bit < max_bit_; ++bit) {
    std::map<std::uint64_t, int> votes;
    for (int trial = 0; trial < trials_; ++trial) {
      // A fresh, idle memory system per probe: banks precharged, no queue.
      GddrSystem gddr(*arch_, mapping_);
      std::uint64_t base = rng_.next_u64() & addr_mask;
      base &= ~(1ull << bit);
      // First access: cold -> always a row miss; spaced so nothing queues.
      const std::uint64_t t0 = 0;
      (void)gddr.access(base, t0);
      const std::uint64_t t1 = 1u << 20;  // far past any service time
      const std::uint64_t done = gddr.access(base ^ (1ull << bit), t1);
      ++votes[done - t1];
    }
    auto best = votes.begin();
    for (auto it = votes.begin(); it != votes.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    bit_latency[static_cast<std::size_t>(bit)] = best->first;
  }

  // Cluster the observed latencies into (up to) three groups.
  std::vector<std::uint64_t> levels(bit_latency);
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  GPUHMS_CHECK_MSG(levels.size() <= 3,
                   "expected at most three latency levels (hit/miss/conflict)");

  AddressMapDetection out;
  out.hit_latency = levels.front();
  out.conflict_latency = levels.back();
  // The miss level is whichever remains; with fewer than three observed
  // levels (degenerate mappings), fall back to the extremes.
  out.miss_latency = levels.size() == 3 ? levels[1] : levels.front();

  for (int bit = 0; bit < max_bit_; ++bit) {
    const std::uint64_t lat = bit_latency[static_cast<std::size_t>(bit)];
    if (lat == out.hit_latency) {
      out.column_bits.push_back(bit);
    } else if (lat == out.conflict_latency && levels.size() >= 2) {
      out.row_bits.push_back(bit);
    } else {
      out.bank_bits.push_back(bit);
    }
  }
  return out;
}

}  // namespace gpuhms
