// Algorithm 1 of the paper: address-mapping detection via latency
// microbenchmarking.
//
// For every address bit x, issue two uncached requests whose addresses
// differ only in bit x. The first always misses (cold row). The second's
// latency classifies the bit:
//   * shortest latency  -> row-buffer hit  -> x is a column bit (or lies
//     inside one transaction),
//   * longest latency   -> row conflict    -> x is a row bit (same bank,
//     different row: write back + activate),
//   * in between        -> row miss        -> x selects a different bank.
// The three latency levels are discovered by clustering, not assumed, and
// the measured hit/miss/conflict latencies are reported — reproducing the
// paper's 352/742/1008 ns measurement on the substrate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dram/gddr.hpp"

namespace gpuhms {

struct AddressMapDetection {
  std::vector<int> column_bits;   // second access hits
  std::vector<int> bank_bits;     // second access misses (different bank)
  std::vector<int> row_bits;      // second access row-conflicts
  std::uint64_t hit_latency = 0;
  std::uint64_t miss_latency = 0;
  std::uint64_t conflict_latency = 0;
};

class AddressMapDetector {
 public:
  // max_bit: highest address bit to probe (exclusive). trials: independent
  // random base addresses per bit; classification is by majority.
  AddressMapDetector(const GpuArch& arch, AddressMapping mapping,
                     int max_bit = 34, int trials = 5,
                     std::uint64_t seed = 42);

  AddressMapDetection run();

 private:
  const GpuArch* arch_;
  AddressMapping mapping_;
  int max_bit_;
  int trials_;
  Rng rng_;
};

}  // namespace gpuhms
