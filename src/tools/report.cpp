#include "tools/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <vector>

#include "common/check.hpp"

namespace gpuhms {

namespace {

struct Scored {
  DataPlacement placement;
  Prediction prediction;
};

}  // namespace

void write_placement_report(std::ostream& os, const Predictor& predictor,
                            const ReportOptions& opts) {
  const KernelInfo& k = predictor.kernel();
  const GpuArch& arch = kepler_arch();
  const DataPlacement& sample = predictor.sample_placement();
  const SimResult& profile = predictor.sample_result();

  os << "# Placement report: " << k.name << "\n\n";
  os << "Kernel: " << k.num_blocks << " blocks x " << k.threads_per_block
     << " threads (" << k.total_warps() << " warps)\n\n";

  os << "## Arrays\n\n";
  os << "| array | elements | type | written | default |\n";
  os << "|---|---|---|---|---|\n";
  for (const auto& a : k.arrays) {
    os << "| " << a.name << " | " << a.elems << " | " << to_string(a.dtype)
       << " | " << (a.written ? "yes" : "no") << " | "
       << short_code(a.default_space) << " |\n";
  }

  os << "\n## Profiled sample placement\n\n";
  os << "Placement `" << sample.to_string() << "`: **" << profile.cycles
     << " cycles** measured.\n";
  const auto& c = profile.counters;
  os << "Issued " << c.inst_issued << " instructions (" << c.replays_total()
     << " replays), " << c.dram_requests << " DRAM requests ("
     << profile.dram.row_hits() << " row hits / " << profile.dram.row_misses()
     << " misses / " << profile.dram.row_conflicts() << " conflicts), "
     << c.shared_bank_conflicts << " shared bank conflicts.\n";

  // Explore and rank.
  const auto space = enumerate_placements(k, arch, opts.max_placements);
  std::vector<Scored> scored;
  scored.reserve(space.size());
  for (const auto& p : space) {
    scored.push_back({p, predictor.predict(p)});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.prediction.total_cycles < b.prediction.total_cycles;
  });

  os << "\n## Ranked placements (" << scored.size() << " explored, top "
     << std::min(opts.table_rows, scored.size()) << " shown)\n\n";
  os << "| # | placement | predicted | vs sample | T_comp | T_mem | "
        "T_overlap | change |\n";
  os << "|---|---|---|---|---|---|---|---|\n";
  const double sample_cycles = static_cast<double>(profile.cycles);
  char buf[64];
  for (std::size_t i = 0; i < std::min(opts.table_rows, scored.size()); ++i) {
    const auto& s = scored[i];
    std::snprintf(buf, sizeof buf, "%.2fx",
                  sample_cycles / s.prediction.total_cycles);
    os << "| " << i + 1 << " | `" << s.placement.to_string() << "` | "
       << static_cast<long long>(s.prediction.total_cycles) << " | " << buf
       << " | " << static_cast<long long>(s.prediction.t_comp) << " | "
       << static_cast<long long>(s.prediction.t_mem) << " | "
       << static_cast<long long>(s.prediction.t_overlap) << " | "
       << s.placement.describe_vs(sample, k) << " |\n";
  }

  GPUHMS_CHECK(!scored.empty());
  const Scored& best = scored.front();
  os << "\n## Recommendation\n\n";
  os << "Place `" << best.placement.to_string() << "` ("
     << best.placement.describe_vs(sample, k) << "), predicted "
     << static_cast<long long>(best.prediction.total_cycles) << " cycles.\n";
  if (opts.validate_top_choice) {
    const SimResult validated = simulate(k, best.placement, arch);
    std::snprintf(buf, sizeof buf, "%.3f",
                  best.prediction.total_cycles /
                      static_cast<double>(validated.cycles));
    os << "Validation run: " << validated.cycles
       << " cycles measured (predicted/measured = " << buf << ").\n";
  }
}

}  // namespace gpuhms
