// Performance-event screening (Sec. II-B): given runs of a kernel under N
// data placements, compute the cosine similarity between the execution-time
// vector and every performance-event vector, and select events above the
// paper's 0.94 threshold as modeling indicators (Table I).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/counters.hpp"

namespace gpuhms {

struct EventScreen {
  // Cosine similarity per event name (events absent in a run count as 0).
  std::map<std::string, double> similarity;
  // Events with similarity >= threshold, sorted descending by similarity.
  std::vector<std::string> selected;
  double threshold = 0.94;
};

EventScreen screen_events(const std::vector<SimResult>& runs,
                          double threshold = 0.94);

}  // namespace gpuhms
