// Report generation: renders a full placement-advice report for a kernel as
// Markdown — the artifact a performance engineer would hand off. Contains
// the kernel summary, the profiled sample, a ranked table of every explored
// placement with component breakdowns, and the event profile of the
// recommended placement.
#pragma once

#include <iosfwd>

#include "model/predictor.hpp"

namespace gpuhms {

struct ReportOptions {
  std::size_t max_placements = 128;  // exploration cap
  std::size_t table_rows = 15;       // placements shown in the ranking table
  // Also simulate the top recommendation to show predicted-vs-measured
  // (costs one substrate run).
  bool validate_top_choice = true;
};

// Writes the Markdown report. The predictor must have a profiled sample.
void write_placement_report(std::ostream& os, const Predictor& predictor,
                            const ReportOptions& opts = {});

}  // namespace gpuhms
