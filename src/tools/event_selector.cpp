#include "tools/event_selector.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace gpuhms {

EventScreen screen_events(const std::vector<SimResult>& runs,
                          double threshold) {
  GPUHMS_CHECK_MSG(runs.size() >= 2, "need at least two placements to screen");
  EventScreen out;
  out.threshold = threshold;

  std::vector<double> time_vec;
  time_vec.reserve(runs.size());
  for (const SimResult& r : runs)
    time_vec.push_back(static_cast<double>(r.cycles));

  // Union of event names across runs.
  std::map<std::string, std::vector<double>> event_vecs;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (const auto& [name, value] : runs[i].counters.as_event_map()) {
      auto& v = event_vecs[name];
      v.resize(runs.size(), 0.0);
      v[i] = value;
    }
  }

  for (const auto& [name, vec] : event_vecs) {
    out.similarity[name] = cosine_similarity(vec, time_vec);
  }

  for (const auto& [name, sim] : out.similarity) {
    if (sim >= threshold) out.selected.push_back(name);
  }
  std::sort(out.selected.begin(), out.selected.end(),
            [&](const std::string& a, const std::string& b) {
              return out.similarity.at(a) > out.similarity.at(b);
            });
  return out;
}

}  // namespace gpuhms
