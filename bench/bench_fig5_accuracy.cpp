// E4 — Fig. 5 reproduction: predicted performance (normalized to measured)
// for every evaluation placement test, our model vs the Sim et al. [7]
// baseline it extends.
//
// Paper: our average error ~9.9%, improving on [7] by ~17.6% on average,
// with the largest gains on replay-heavy (NN_C, SCAN_2) and row-buffer-
// sensitive (Reduction_2) tests.
#include <cstdio>

#include "eval_common.hpp"

using namespace gpuhms;
using namespace gpuhms::bench;

int main(int argc, char** argv) {
  EvalHarness harness;

  if (argc > 1 && std::string(argv[1]) == "--list") {
    std::printf("evaluation placement tests (Table IV):\n");
    for (const auto& c : harness.evaluation()) {
      for (const auto& t : c.tests)
        std::printf("  %-14s %-12s %s\n", t.id.c_str(), c.name.c_str(),
                    t.description.c_str());
    }
    std::printf("training placements (Table IV):\n");
    for (const auto& c : harness.training()) {
      std::printf("  %-14s %-12s default\n", (c.name + "_0").c_str(),
                  c.name.c_str());
      for (const auto& t : c.tests)
        std::printf("  %-14s %-12s %s\n", t.id.c_str(), c.name.c_str(),
                    t.description.c_str());
    }
    return 0;
  }

  const auto ours = harness.run_variant(ModelOptions{});
  const auto sim2012 = harness.run_sim2012();

  print_comparison(
      "Fig. 5: prediction accuracy, our model vs Sim et al. [7]",
      {"our model", "Sim et al.[7]"}, {ours, sim2012});

  const double e_ours = mean_abs_error(ours);
  const double e_sim = mean_abs_error(sim2012);
  std::printf("our avg error: %.1f%%  (paper: 9.9%%)\n", 100.0 * e_ours);
  std::printf("[7] avg error: %.1f%%  -> improvement %.1f%% "
              "(paper: 17.6%% avg improvement)\n",
              100.0 * e_sim, 100.0 * (e_sim - e_ours));
  return 0;
}
