// E4 — Fig. 5 reproduction: predicted performance (normalized to measured)
// for every evaluation placement test, our model vs the Sim et al. [7]
// baseline it extends.
//
// Paper: our average error ~9.9%, improving on [7] by ~17.6% on average,
// with the largest gains on replay-heavy (NN_C, SCAN_2) and row-buffer-
// sensitive (Reduction_2) tests.
// --write-golden PATH regenerates tests/golden/fig5_errors.json, the file
// test_golden_accuracy locks the per-test prediction errors against. Only
// rewrite it for an intentional, reviewed accuracy change.
#include <cstdio>
#include <string>

#include "eval_common.hpp"

using namespace gpuhms;
using namespace gpuhms::bench;

namespace {

// Full-precision doubles (%.17g round-trips binary64) so the golden file
// carries no quantization of its own; the test applies the tolerance.
int write_golden(const char* path, const std::vector<Row>& ours,
                 const std::vector<Row>& sim2012) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"source\": \"bench_fig5_accuracy --write-golden\",\n");
  std::fprintf(f, "  \"model_avg_abs_error\": %.17g,\n",
               mean_abs_error(ours));
  std::fprintf(f, "  \"sim2012_avg_abs_error\": %.17g,\n",
               mean_abs_error(sim2012));
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < ours.size(); ++i) {
    const Row& r = ours[i];
    std::fprintf(f,
                 "    {\"id\": \"%s\", \"benchmark\": \"%s\", "
                 "\"measured\": %.17g, \"predicted\": %.17g, "
                 "\"abs_error\": %.17g}%s\n",
                 r.id.c_str(), r.benchmark.c_str(), r.measured, r.predicted,
                 r.abs_error(), i + 1 < ours.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "failed writing '%s'\n", path);
    return 1;
  }
  std::printf("wrote golden accuracy file: %s (%zu rows)\n", path,
              ours.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  EvalHarness harness;

  if (argc > 1 && std::string(argv[1]) == "--list") {
    std::printf("evaluation placement tests (Table IV):\n");
    for (const auto& c : harness.evaluation()) {
      for (const auto& t : c.tests)
        std::printf("  %-14s %-12s %s\n", t.id.c_str(), c.name.c_str(),
                    t.description.c_str());
    }
    std::printf("training placements (Table IV):\n");
    for (const auto& c : harness.training()) {
      std::printf("  %-14s %-12s default\n", (c.name + "_0").c_str(),
                  c.name.c_str());
      for (const auto& t : c.tests)
        std::printf("  %-14s %-12s %s\n", t.id.c_str(), c.name.c_str(),
                    t.description.c_str());
    }
    return 0;
  }

  const auto ours = harness.run_variant(ModelOptions{});
  const auto sim2012 = harness.run_sim2012();

  if (argc > 1 && std::string(argv[1]) == "--write-golden") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --write-golden PATH\n", argv[0]);
      return 1;
    }
    return write_golden(argv[2], ours, sim2012);
  }

  print_comparison(
      "Fig. 5: prediction accuracy, our model vs Sim et al. [7]",
      {"our model", "Sim et al.[7]"}, {ours, sim2012});

  const double e_ours = mean_abs_error(ours);
  const double e_sim = mean_abs_error(sim2012);
  std::printf("our avg error: %.1f%%  (paper: 9.9%%)\n", 100.0 * e_ours);
  std::printf("[7] avg error: %.1f%%  -> improvement %.1f%% "
              "(paper: 17.6%% avg improvement)\n",
              100.0 * e_sim, 100.0 * (e_sim - e_ours));
  return 0;
}
