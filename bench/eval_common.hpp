// Shared harness for the evaluation benches (Fig. 5-9 of the paper): owns
// the Table IV suites, memoizes simulator measurements so the model variants
// under comparison score against identical ground truth, trains the
// T_overlap model per variant, and formats the normalized-performance tables
// the paper plots.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "baselines/sim2012.hpp"
#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms::bench {

struct Row {
  std::string id;           // e.g. "NN_C"
  std::string benchmark;    // e.g. "neuralnet"
  double measured = 0.0;    // simulated "hardware" cycles
  double predicted = 0.0;   // model cycles
  double normalized() const { return predicted / measured; }
  double abs_error() const { return std::abs(normalized() - 1.0); }
};

class EvalHarness {
 public:
  EvalHarness();

  const GpuArch& arch() const;

  // Simulate (memoized) a placement of a benchmark.
  const SimResult& measure(const workloads::BenchmarkCase& c,
                           const DataPlacement& p);

  // Train the Eq. 11 overlap model on the Table IV training suite under the
  // given model options (the options matter: ablated variants analyze their
  // training events the same way they will analyze the targets).
  ToverlapModel train_overlap(const ModelOptions& options);

  // Run one variant of our model over every evaluation test.
  std::vector<Row> run_variant(const ModelOptions& options);
  // Run the Sim et al. [7] baseline over every evaluation test.
  std::vector<Row> run_sim2012();

  const std::vector<workloads::BenchmarkCase>& evaluation() const {
    return evaluation_;
  }
  const std::vector<workloads::BenchmarkCase>& training() const {
    return training_;
  }

 private:
  std::vector<workloads::BenchmarkCase> training_;
  std::vector<workloads::BenchmarkCase> evaluation_;
  std::map<std::string, SimResult> measured_;
  std::map<std::string, ToverlapModel> overlap_cache_;  // keyed by options
};

double mean_abs_error(const std::vector<Row>& rows);

// Prints one aligned table: a column of measured-normalized predictions per
// variant plus the per-variant average error footer.
void print_comparison(const std::string& title,
                      const std::vector<std::string>& variant_names,
                      const std::vector<std::vector<Row>>& variants);

std::string options_key(const ModelOptions& o);

}  // namespace gpuhms::bench
