// Extension bench — the introduction's motivation, reproduced end to end:
//   * across a kernel's legal placements, performance varies wildly
//     (papers [4]/[5] report up to 208% difference, 159% on average, and
//     hand-tuned defaults below half of the achievable best);
//   * a model-guided search recovers (nearly) the oracle-best placement
//     from ONE profiled run instead of simulating/implementing the space.
#include <cstdio>
#include <vector>

#include "model/search.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

struct KernelUnderStudy {
  const char* name;
  KernelInfo kernel;
};

}  // namespace

int main() {
  const GpuArch& arch = kepler_arch();

  // Train the overlap model once on the Table IV training suite.
  std::vector<workloads::BenchmarkCase> training = workloads::training_suite();
  std::vector<TrainingCase> cases;
  for (const auto& c : training) {
    cases.push_back({&c.kernel, c.sample});
    for (const auto& t : c.tests) cases.push_back({&c.kernel, t.placement});
  }
  const ToverlapModel overlap = train_overlap_model(cases, arch);

  std::vector<KernelUnderStudy> kernels;
  kernels.push_back({"vecadd", workloads::make_vecadd()});
  kernels.push_back({"triad", workloads::make_triad()});
  kernels.push_back({"stencil2d", workloads::make_stencil2d()});
  kernels.push_back({"transpose", workloads::make_transpose()});
  kernels.push_back({"convolution", workloads::make_convolution()});
  kernels.push_back({"neuralnet", workloads::make_neuralnet()});

  std::printf("Motivation: placement-induced performance spread and "
              "model-guided search quality\n\n");
  std::printf("%-12s %6s %10s %10s %10s %8s | %10s %8s %9s\n", "kernel",
              "space", "default", "best", "worst", "spread",
              "model-pick", "regret", "evaluated");

  double spread_sum = 0.0, regret_sum = 0.0;
  for (auto& [name, kernel] : kernels) {
    const DataPlacement sample = DataPlacement::defaults(kernel);
    const auto oracle = search_oracle(kernel, arch, 256);
    const double dflt =
        static_cast<double>(simulate(kernel, sample, arch).cycles);

    Predictor pred(kernel, arch, ModelOptions{}, overlap);
    pred.profile_sample(sample);
    const SearchResult pick = search_exhaustive(pred, 256);
    const double pick_measured =
        static_cast<double>(simulate(kernel, pick.placement, arch).cycles);

    const double spread =
        100.0 * (static_cast<double>(oracle.worst_cycles) /
                     static_cast<double>(oracle.best_cycles) - 1.0);
    const double regret =
        100.0 * (pick_measured / static_cast<double>(oracle.best_cycles) - 1.0);
    spread_sum += spread;
    regret_sum += regret;

    std::printf("%-12s %6zu %10.0f %10llu %10llu %7.0f%% | %10.0f %7.1f%% %9zu\n",
                name, oracle.simulated, dflt,
                static_cast<unsigned long long>(oracle.best_cycles),
                static_cast<unsigned long long>(oracle.worst_cycles), spread,
                pick_measured, regret, pick.evaluated);
  }
  std::printf("\navg worst/best spread: %.0f%% (papers [4]/[5] report up to "
              "208%%, 159%% on average)\n",
              spread_sum / static_cast<double>(kernels.size()));
  std::printf("avg model-pick regret vs oracle best: %.1f%% (one profiled "
              "run per kernel; oracle needed the full space)\n",
              regret_sum / static_cast<double>(kernels.size()));

  // Greedy vs exhaustive on the largest space here (neuralnet).
  {
    auto& kus = kernels.back();
    Predictor pred(kus.kernel, arch, ModelOptions{}, overlap);
    pred.profile_sample(DataPlacement::defaults(kus.kernel));
    const SearchResult ex = search_exhaustive(pred, 256);
    const SearchResult gr = search_greedy(pred);
    std::printf("\ngreedy coordinate descent on %s: %zu evaluations vs %zu "
                "exhaustive; picked %s (exhaustive: %s)\n", kus.name,
                gr.evaluated, ex.evaluated,
                gr.placement.to_string().c_str(),
                ex.placement.to_string().c_str());
  }
  return 0;
}
