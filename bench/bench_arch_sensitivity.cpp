// Extension bench — the Sec. II-A generality claim: "our general modeling
// methodology is applicable to other GPUs with programmable memories."
// Re-run the Fig. 5 accuracy experiment on three different architecture
// configurations (the substrate and the analytical models both read the
// same GpuArch, exactly as the real methodology would be re-parameterized
// for a different GPU) and check the accuracy holds up.
#include <cstdio>
#include <vector>

#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

struct ArchVariant {
  const char* name;
  GpuArch arch;
};

double eval_error(const GpuArch& arch) {
  // Train on the training suite under this architecture.
  std::vector<workloads::BenchmarkCase> training = workloads::training_suite();
  std::vector<TrainingCase> cases;
  for (const auto& c : training) {
    cases.push_back({&c.kernel, c.sample});
    for (const auto& t : c.tests) cases.push_back({&c.kernel, t.placement});
  }
  const ToverlapModel overlap = train_overlap_model(cases, arch);

  double err = 0.0;
  int n = 0;
  for (const auto& c : workloads::evaluation_suite()) {
    Predictor pred(c.kernel, arch, ModelOptions{}, overlap);
    pred.profile_sample(c.sample);
    for (const auto& t : c.tests) {
      const double m =
          static_cast<double>(simulate(c.kernel, t.placement, arch).cycles);
      const double p = pred.predict(t.placement).total_cycles;
      err += std::abs(p / m - 1.0);
      ++n;
    }
  }
  return err / n;
}

}  // namespace

int main() {
  std::vector<ArchVariant> variants;
  variants.push_back({"Kepler-class (default)", kepler_arch()});
  {
    GpuArch small = kepler_arch();  // a laptop-part-like configuration
    small.num_sms = 5;
    small.l2_capacity = 512 * 1024;
    small.dram_channels = 4;
    small.max_warps_per_sm = 32;
    variants.push_back({"small GPU (5 SM, 0.5 MiB L2, 4 ch)", small});
  }
  {
    GpuArch big = kepler_arch();  // a larger-die configuration
    big.num_sms = 24;
    big.l2_capacity = 3 * 1024 * 1024;
    big.dram.row_hit_service = 24;
    big.dram.row_miss_service = 300;
    big.dram.row_conflict_service = 500;
    big.cache_hit_lat = 120;
    variants.push_back({"big GPU (24 SM, 3 MiB L2, faster DRAM)", big});
  }

  std::printf("Architecture generality: Fig. 5 accuracy re-run per GPU "
              "configuration\n\n");
  std::printf("%-40s %12s\n", "configuration", "avg |error|");
  for (const auto& v : variants) {
    std::printf("%-40s %11.1f%%\n", v.name, 100.0 * eval_error(v.arch));
  }
  std::printf("\npaper claim (Sec. II-A): the methodology is not tied to one "
              "GPU; errors should stay in the same band across "
              "configurations.\n");
  return 0;
}
