#include "eval_common.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace gpuhms::bench {

namespace {

std::string key_of(const workloads::BenchmarkCase& c,
                   const DataPlacement& p) {
  return c.name + "|" + p.to_string();
}

}  // namespace

EvalHarness::EvalHarness()
    : training_(workloads::training_suite()),
      evaluation_(workloads::evaluation_suite()) {}

const GpuArch& EvalHarness::arch() const { return kepler_arch(); }

const SimResult& EvalHarness::measure(const workloads::BenchmarkCase& c,
                                      const DataPlacement& p) {
  const std::string key = key_of(c, p);
  auto it = measured_.find(key);
  if (it == measured_.end()) {
    it = measured_.emplace(key, simulate(c.kernel, p, arch())).first;
  }
  return it->second;
}

std::string options_key(const ModelOptions& o) {
  std::string k;
  k += o.detailed_instruction_counting ? 'I' : '-';
  k += !o.queuing_model ? '-'
       : o.queue_discipline == QueueDiscipline::GG1 ? 'Q' : 'M';
  k += o.address_mapping ? 'A' : '-';
  k += o.row_buffer_model ? 'R' : '-';
  return k;
}

ToverlapModel EvalHarness::train_overlap(const ModelOptions& options) {
  const std::string key = options_key(options);
  auto it = overlap_cache_.find(key);
  if (it != overlap_cache_.end()) return it->second;

  std::vector<MeasuredCase> cases;
  for (const auto& c : training_) {
    cases.push_back({&c.kernel, c.sample, measure(c, c.sample)});
    for (const auto& t : c.tests) {
      cases.push_back({&c.kernel, t.placement, measure(c, t.placement)});
    }
  }
  ToverlapModel model = train_overlap_model_measured(cases, arch(), options);
  overlap_cache_.emplace(key, model);
  return model;
}

std::vector<Row> EvalHarness::run_variant(const ModelOptions& options) {
  const ToverlapModel overlap = train_overlap(options);
  std::vector<Row> rows;
  for (const auto& c : evaluation_) {
    Predictor pred(c.kernel, arch(), options, overlap);
    pred.set_sample(c.sample, measure(c, c.sample));
    for (const auto& t : c.tests) {
      Row r;
      r.id = t.id;
      r.benchmark = c.name;
      r.measured = static_cast<double>(measure(c, t.placement).cycles);
      r.predicted = pred.predict(t.placement).total_cycles;
      rows.push_back(r);
    }
  }
  return rows;
}

std::vector<Row> EvalHarness::run_sim2012() {
  std::vector<Row> rows;
  for (const auto& c : evaluation_) {
    Sim2012Predictor pred(c.kernel, arch());
    pred.set_sample(c.sample, measure(c, c.sample));
    for (const auto& t : c.tests) {
      Row r;
      r.id = t.id;
      r.benchmark = c.name;
      r.measured = static_cast<double>(measure(c, t.placement).cycles);
      r.predicted = pred.predict(t.placement).total_cycles;
      rows.push_back(r);
    }
  }
  return rows;
}

double mean_abs_error(const std::vector<Row>& rows) {
  if (rows.empty()) return 0.0;
  double e = 0.0;
  for (const auto& r : rows) e += r.abs_error();
  return e / static_cast<double>(rows.size());
}

void print_comparison(const std::string& title,
                      const std::vector<std::string>& variant_names,
                      const std::vector<std::vector<Row>>& variants) {
  GPUHMS_CHECK(!variants.empty());
  for (const auto& v : variants)
    GPUHMS_CHECK(v.size() == variants[0].size());

  std::printf("%s\n", title.c_str());
  std::printf("(predicted time normalized to measured; 1.00 = exact)\n\n");
  std::printf("%-14s %12s", "test", "measured");
  for (const auto& name : variant_names) std::printf(" %14s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < variants[0].size(); ++i) {
    std::printf("%-14s %12.0f", variants[0][i].id.c_str(),
                variants[0][i].measured);
    for (const auto& v : variants) std::printf(" %14.3f", v[i].normalized());
    std::printf("\n");
  }
  std::printf("%-14s %12s", "avg |error|", "");
  for (const auto& v : variants)
    std::printf(" %13.1f%%", 100.0 * mean_abs_error(v));
  std::printf("\n\n");
}

}  // namespace gpuhms::bench
