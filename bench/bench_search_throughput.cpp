// Search-engine throughput: end-to-end exhaustive-search wall time and
// predictions/sec, comparing the serial seed configuration (one thread, no
// trace memoization, no pruning — the pre-engine code path) against the
// parallel engine with each optimization layered in. The two single-core
// memoized variants isolate the replay engine itself: `legacy_replay` runs
// the scalar per-op walk (GPUHMS_LEGACY_REPLAY), `soa_replay` the
// data-oriented batch engine — same thread, same skeleton, so their ratio is
// the pure engine speedup. Run on the largest registered workloads (>= 4
// arrays, i.e. the widest placement spaces).
//
// Besides timing, the bench is a correctness harness: every variant must
// return the serial seed's winner, and a full ranked sweep re-predicts every
// candidate through the cold, legacy-replay and SoA paths and requires
// byte-identical cycles. At the default cap it also self-asserts the >= 5x
// single-core SoA-vs-seed target on matrixmul. A final metrics-enabled pass
// (not timed) records the per-phase breakdown.
//
// Emits BENCH_search.json in the working directory for the perf trajectory.
//
// Usage: ./bench/bench_search_throughput [cap] [repeats]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/obs.hpp"
#include "model/search.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Variant {
  std::string name;
  SearchOptions options;
  bool legacy_replay = false;  // run under GPUHMS_LEGACY_REPLAY=1
};

struct Measurement {
  double wall_ms = 0.0;
  SearchResult result;
};

// Forces the scalar replay for the duration of one variant. The analyzers
// latch the env var at construction and search_exhaustive constructs its
// per-worker analyzers inside the call, so scoping the variable around the
// search is enough.
struct ScopedLegacyReplay {
  explicit ScopedLegacyReplay(bool on) : on_(on) {
    if (on_) setenv("GPUHMS_LEGACY_REPLAY", "1", 1);
  }
  ~ScopedLegacyReplay() {
    if (on_) unsetenv("GPUHMS_LEGACY_REPLAY");
  }
  bool on_;
};

Measurement run_variant(const Predictor& pred, const Variant& variant,
                        int repeats) {
  const ScopedLegacyReplay legacy(variant.legacy_replay);
  Measurement m;
  m.wall_ms = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const double t0 = now_ms();
    m.result = search_exhaustive(pred, variant.options);
    m.wall_ms = std::min(m.wall_ms, now_ms() - t0);  // best-of-N
  }
  return m;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// Re-predicts every candidate of the capped space through the three replay
// paths — cold (regenerate the trace per candidate), legacy scalar replay,
// SoA replay — and requires byte-identical total cycles, candidate by
// candidate. Ranking equality follows from value equality.
bool ranked_results_identical(const Predictor& pred,
                              const workloads::BenchmarkCase& c,
                              const PlacementSpace& space) {
  const TraceSkeleton skel(c.kernel);
  TraceAnalyzer soa_analyzer = pred.make_analyzer();
  TraceAnalyzer legacy_analyzer = [&] {
    const ScopedLegacyReplay legacy(true);
    return pred.make_analyzer();
  }();
  for (const DataPlacement& p : space.placements) {
    const double cold = pred.predict(p).total_cycles;
    const double soa = pred.predict_with(p, &soa_analyzer, &skel).total_cycles;
    const double leg =
        pred.predict_with(p, &legacy_analyzer, &skel).total_cycles;
    if (!same_bits(cold, soa) || !same_bits(cold, leg)) {
      std::fprintf(stderr,
                   "%s: ranked results diverge on %s "
                   "(cold=%.17g soa=%.17g legacy=%.17g)\n",
                   c.name.c_str(), p.to_string().c_str(), cold, soa, leg);
      return false;
    }
  }
  return true;
}

void emit_histogram(std::FILE* json, const char* key,
                    const obs::MetricsSnapshot& snap, bool* first) {
  const auto* h = snap.find_histogram(key);
  if (!h) return;
  std::fprintf(json, "%s\n        \"%s\": {\"count\": %llu, \"sum\": %llu, "
               "\"mean\": %.1f, \"max\": %llu, \"buckets\": [",
               *first ? "" : ",", key,
               static_cast<unsigned long long>(h->count),
               static_cast<unsigned long long>(h->sum), h->mean,
               static_cast<unsigned long long>(h->max));
  *first = false;
  for (std::size_t b = 0; b < h->buckets.size(); ++b)
    std::fprintf(json, "%s[%llu, %llu]", b ? ", " : "",
                 static_cast<unsigned long long>(h->buckets[b].first),
                 static_cast<unsigned long long>(h->buckets[b].second));
  std::fprintf(json, "]}");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t cap =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 96;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 2;
  const GpuArch& arch = kepler_arch();
  const int threads = ThreadPool::default_threads();
  // The 5x single-core acceptance target only means something at a cap large
  // enough to amortize the per-search setup; the tiny `ctest -L perf` smoke
  // run stays a pure smoke test.
  const bool assert_speedup = cap >= 96;

  // Largest workloads: every registered benchmark with >= 4 arrays.
  std::vector<workloads::BenchmarkCase> cases = workloads::evaluation_suite();
  for (auto& c : workloads::training_suite()) cases.push_back(std::move(c));
  std::vector<workloads::BenchmarkCase> picked;
  for (auto& c : cases)
    if (c.kernel.arrays.size() >= 4) picked.push_back(std::move(c));
  std::sort(picked.begin(), picked.end(), [](const auto& a, const auto& b) {
    return a.kernel.arrays.size() > b.kernel.arrays.size();
  });
  if (picked.size() > 4) picked.resize(4);

  auto opts = [&](int nthreads, bool memoize, bool prune) {
    SearchOptions o;
    o.cap = cap;
    o.num_threads = nthreads;
    o.memoize_trace = memoize;
    o.prune = prune;
    return o;
  };
  const std::vector<Variant> variants = {
      {"serial_seed", opts(1, false, false), false},
      {"legacy_replay", opts(1, true, false), true},
      {"soa_replay", opts(1, true, false), false},
      {"parallel", opts(threads, false, false), false},
      {"parallel_memoized", opts(threads, true, false), false},
      {"parallel_memoized_pruned", opts(threads, true, true), false},
  };

  std::FILE* json = std::fopen("BENCH_search.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_search.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"threads\": %d,\n  \"cap\": %zu,\n"
               "  \"workloads\": [\n", threads, cap);

  std::printf("search throughput (cap=%zu, %d threads, best of %d)\n\n", cap,
              threads, repeats);
  bool first_workload = true;
  bool speedup_ok = true;
  for (const auto& c : picked) {
    Predictor pred(c.kernel, arch);
    pred.profile_sample(c.sample);
    const PlacementSpace space =
        enumerate_placement_space(c.kernel, arch, cap);

    std::printf("%s (%zu arrays, %zu legal placements%s)\n", c.name.c_str(),
                c.kernel.arrays.size(), space.placements.size(),
                space.truncated ? ", capped" : "");
    std::printf("  %-26s %10s %12s %10s %8s\n", "variant", "wall ms",
                "pred/sec", "evaluated", "speedup");

    if (!first_workload) std::fprintf(json, ",\n");
    first_workload = false;
    std::fprintf(json,
                 "    {\n      \"name\": \"%s\",\n      \"arrays\": %zu,\n"
                 "      \"variants\": {\n",
                 c.name.c_str(), c.kernel.arrays.size());

    double serial_ms = 0.0;
    double soa_ms = 0.0;
    SearchResult serial_copy;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const Measurement m = run_variant(pred, variants[v], repeats);
      if (v == 0) {
        serial_ms = m.wall_ms;
        serial_copy = m.result;
      } else {
        // The engine must agree with the seed path on the winner.
        if (!(m.result.placement == serial_copy.placement) ||
            m.result.predicted_cycles != serial_copy.predicted_cycles) {
          std::fprintf(stderr, "%s: %s diverged from serial_seed\n",
                       c.name.c_str(), variants[v].name.c_str());
          std::fclose(json);
          return 1;
        }
      }
      if (variants[v].name == "soa_replay") soa_ms = m.wall_ms;
      const double preds_per_sec =
          static_cast<double>(m.result.evaluated) / (m.wall_ms / 1000.0);
      const double speedup = serial_ms / m.wall_ms;
      std::printf("  %-26s %10.1f %12.1f %10zu %7.2fx\n",
                  variants[v].name.c_str(), m.wall_ms, preds_per_sec,
                  m.result.evaluated, speedup);
      std::fprintf(json,
                   "        \"%s\": {\"wall_ms\": %.3f, "
                   "\"predictions_per_sec\": %.2f, \"evaluated\": %zu, "
                   "\"pruned\": %zu, \"prune_checks\": %zu, "
                   "\"prune_bound_ratio\": %.4f, "
                   "\"prune_gate_reason\": \"%s\", "
                   "\"speedup_vs_serial\": %.3f}%s\n",
                   variants[v].name.c_str(), m.wall_ms, preds_per_sec,
                   m.result.evaluated, m.result.pruned, m.result.prune_checks,
                   m.result.prune_bound_ratio, m.result.prune_gate_reason,
                   speedup, v + 1 < variants.size() ? "," : "");
    }
    std::fprintf(json, "      },\n");

    if (!ranked_results_identical(pred, c, space)) {
      std::fclose(json);
      return 1;
    }
    std::fprintf(json, "      \"ranked_results_identical\": true,\n");

    if (assert_speedup && c.name == "matrixmul" && soa_ms > 0.0 &&
        serial_ms / soa_ms < 5.0) {
      std::fprintf(stderr,
                   "matrixmul: soa_replay %.1fms is only %.2fx over "
                   "serial_seed %.1fms (target >= 5x)\n",
                   soa_ms, serial_ms / soa_ms, serial_ms);
      speedup_ok = false;
    }

    // Per-phase breakdown of one single-core SoA search, recorded outside
    // the timed runs so metric overhead never pollutes the numbers above.
    obs::set_enabled(true);
    obs::reset_all_metrics();
    {
      Variant soa = variants[2];
      run_variant(pred, soa, 1);
    }
    obs::set_enabled(false);
    const obs::MetricsSnapshot snap = obs::snapshot();
    std::fprintf(json, "      \"soa_phase_ns\": {");
    bool first_hist = true;
    emit_histogram(json, "trace.analyze_ns", snap, &first_hist);
    emit_histogram(json, "trace.soa_lower_ns", snap, &first_hist);
    emit_histogram(json, "trace.soa_replay_ns", snap, &first_hist);
    std::fprintf(json, "\n      }\n    }");
    std::printf("\n");
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  if (!speedup_ok) return 1;
  std::printf("wrote BENCH_search.json\n");
  return 0;
}
