// Search-engine throughput: end-to-end exhaustive-search wall time and
// predictions/sec, comparing the serial seed configuration (one thread, no
// trace memoization, no pruning — the pre-engine code path) against the
// parallel engine with each optimization layered in. Run on the largest
// registered workloads (>= 4 arrays, i.e. the widest placement spaces).
// Emits BENCH_search.json in the working directory for the perf trajectory.
//
// Usage: ./bench/bench_search_throughput [cap] [repeats]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "model/search.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Variant {
  std::string name;
  SearchOptions options;
};

struct Measurement {
  double wall_ms = 0.0;
  SearchResult result;
};

Measurement run_variant(const Predictor& pred, const SearchOptions& options,
                        int repeats) {
  Measurement m;
  m.wall_ms = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const double t0 = now_ms();
    m.result = search_exhaustive(pred, options);
    m.wall_ms = std::min(m.wall_ms, now_ms() - t0);  // best-of-N
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t cap =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 96;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 2;
  const GpuArch& arch = kepler_arch();
  const int threads = ThreadPool::default_threads();

  // Largest workloads: every registered benchmark with >= 4 arrays.
  std::vector<workloads::BenchmarkCase> cases = workloads::evaluation_suite();
  for (auto& c : workloads::training_suite()) cases.push_back(std::move(c));
  std::vector<workloads::BenchmarkCase> picked;
  for (auto& c : cases)
    if (c.kernel.arrays.size() >= 4) picked.push_back(std::move(c));
  std::sort(picked.begin(), picked.end(), [](const auto& a, const auto& b) {
    return a.kernel.arrays.size() > b.kernel.arrays.size();
  });
  if (picked.size() > 4) picked.resize(4);

  auto opts = [&](int nthreads, bool memoize, bool prune) {
    SearchOptions o;
    o.cap = cap;
    o.num_threads = nthreads;
    o.memoize_trace = memoize;
    o.prune = prune;
    return o;
  };
  const std::vector<Variant> variants = {
      {"serial_seed", opts(1, false, false)},
      {"parallel", opts(threads, false, false)},
      {"parallel_memoized", opts(threads, true, false)},
      {"parallel_memoized_pruned", opts(threads, true, true)},
  };

  std::FILE* json = std::fopen("BENCH_search.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_search.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"threads\": %d,\n  \"cap\": %zu,\n"
               "  \"workloads\": [\n", threads, cap);

  std::printf("search throughput (cap=%zu, %d threads, best of %d)\n\n", cap,
              threads, repeats);
  bool first_workload = true;
  for (const auto& c : picked) {
    Predictor pred(c.kernel, arch);
    pred.profile_sample(c.sample);

    std::printf("%s (%zu arrays, %zu legal placements%s)\n", c.name.c_str(),
                c.kernel.arrays.size(),
                enumerate_placement_space(c.kernel, arch, cap).placements.size(),
                enumerate_placement_space(c.kernel, arch, cap).truncated
                    ? ", capped"
                    : "");
    std::printf("  %-26s %10s %12s %10s %8s\n", "variant", "wall ms",
                "pred/sec", "evaluated", "speedup");

    if (!first_workload) std::fprintf(json, ",\n");
    first_workload = false;
    std::fprintf(json,
                 "    {\n      \"name\": \"%s\",\n      \"arrays\": %zu,\n"
                 "      \"variants\": {\n",
                 c.name.c_str(), c.kernel.arrays.size());

    double serial_ms = 0.0;
    const SearchResult* serial_result = nullptr;
    SearchResult serial_copy;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const Measurement m = run_variant(pred, variants[v].options, repeats);
      if (v == 0) {
        serial_ms = m.wall_ms;
        serial_copy = m.result;
        serial_result = &serial_copy;
      } else {
        // The engine must agree with the seed path on the winner.
        if (!(m.result.placement == serial_result->placement) ||
            m.result.predicted_cycles != serial_result->predicted_cycles) {
          std::fprintf(stderr, "%s: %s diverged from serial_seed\n",
                       c.name.c_str(), variants[v].name.c_str());
          std::fclose(json);
          return 1;
        }
      }
      const double preds_per_sec =
          static_cast<double>(m.result.evaluated) / (m.wall_ms / 1000.0);
      const double speedup = serial_ms / m.wall_ms;
      std::printf("  %-26s %10.1f %12.1f %10zu %7.2fx\n",
                  variants[v].name.c_str(), m.wall_ms, preds_per_sec,
                  m.result.evaluated, speedup);
      std::fprintf(json,
                   "        \"%s\": {\"wall_ms\": %.3f, "
                   "\"predictions_per_sec\": %.2f, \"evaluated\": %zu, "
                   "\"pruned\": %zu, \"speedup_vs_serial\": %.3f}%s\n",
                   variants[v].name.c_str(), m.wall_ms, preds_per_sec,
                   m.result.evaluated, m.result.pruned, speedup,
                   v + 1 < variants.size() ? "," : "");
    }
    std::fprintf(json, "      }\n    }");
    std::printf("\n");
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_search.json\n");
  return 0;
}
