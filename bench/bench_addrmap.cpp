// E2 — Algorithm 1 reproduction: detect the DRAM address-mapping scheme and
// measure the row-buffer hit / miss / conflict latencies on the GDDR
// substrate by single-bit-flip latency probing (Sec. III-C2).
//
// Paper (Tesla K80): hit 352 ns, miss 742 ns, conflict 1008 ns; row bits
// 8-21, column bits 30-32, other non-byte bits identify the bank.
#include <cstdio>

#include "tools/addrmap_detector.hpp"

using namespace gpuhms;

namespace {

void print_bits(const char* label, const std::vector<int>& bits) {
  std::printf("%-22s", label);
  for (int b : bits) std::printf(" %d", b);
  std::printf("\n");
}

}  // namespace

int main() {
  const GpuArch& arch = kepler_arch();
  AddressMapDetector detector(arch, kepler_mapping(arch));
  const auto r = detector.run();

  std::printf("Algorithm 1: address-mapping detection via latency probing\n\n");
  std::printf("measured latencies (cycles, 1 cycle == 1 ns):\n");
  std::printf("  row-buffer hit      %6llu   (paper K80:  352 ns)\n",
              static_cast<unsigned long long>(r.hit_latency));
  std::printf("  row-buffer miss     %6llu   (paper K80:  742 ns)\n",
              static_cast<unsigned long long>(r.miss_latency));
  std::printf("  row conflict        %6llu   (paper K80: 1008 ns)\n",
              static_cast<unsigned long long>(r.conflict_latency));
  std::printf("  miss/hit variation  %5.0f%%   (paper: up to 110%%)\n\n",
              100.0 * (static_cast<double>(r.miss_latency) /
                           static_cast<double>(r.hit_latency) - 1.0));

  std::printf("detected bit classification (second-access outcome):\n");
  print_bits("  hit (column/byte):", r.column_bits);
  print_bits("  conflict (row):", r.row_bits);
  print_bits("  miss (bank/chan):", r.bank_bits);

  std::printf("\nsubstrate ground truth: transaction bits 0-6, bank bits "
              "7-13, column bits 14-17, row bits 18-33\n");
  return 0;
}
