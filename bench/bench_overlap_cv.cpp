// Extension bench — leave-one-benchmark-out cross-validation of the
// T_overlap model (Eq. 11). The paper argues the event-*ratio* features make
// the model "independent of applications"; LOBO-CV quantifies that: train on
// the Table IV suite minus one benchmark, evaluate the full pipeline on the
// held-out benchmark's placements, and compare against training on
// everything (the optimistic bound) and against no overlap model at all.
#include <cstdio>
#include <string>
#include <vector>

#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

struct Case {
  const workloads::BenchmarkCase* bench;
  std::vector<MeasuredCase> measured;  // sample + tests
};

double bench_error(const workloads::BenchmarkCase& c,
                   const std::vector<MeasuredCase>& measured,
                   const ToverlapModel& overlap) {
  Predictor pred(c.kernel, kepler_arch(), ModelOptions{}, overlap);
  pred.set_sample(c.sample, measured.front().measured);
  double err = 0.0;
  int n = 0;
  for (std::size_t i = 1; i < measured.size(); ++i) {
    const double m = static_cast<double>(measured[i].measured.cycles);
    err += std::abs(
        pred.predict(measured[i].placement).total_cycles / m - 1.0);
    ++n;
  }
  return n ? err / n : 0.0;
}

}  // namespace

int main() {
  const GpuArch& arch = kepler_arch();
  const std::vector<workloads::BenchmarkCase> suite =
      workloads::training_suite();

  // Measure every placement once.
  std::vector<Case> cases;
  for (const auto& c : suite) {
    Case cc;
    cc.bench = &c;
    cc.measured.push_back({&c.kernel, c.sample,
                           simulate(c.kernel, c.sample, arch)});
    for (const auto& t : c.tests) {
      cc.measured.push_back({&c.kernel, t.placement,
                             simulate(c.kernel, t.placement, arch)});
    }
    cases.push_back(std::move(cc));
  }

  std::printf("Leave-one-benchmark-out cross-validation of the Eq. 11 "
              "overlap model (training suite)\n\n");
  std::printf("%-14s %6s %12s %12s %12s\n", "held out", "tests", "untrained",
              "LOBO-CV", "train-on-all");

  const ToverlapModel none;  // untrained: zero overlap
  double cv_sum = 0.0, all_sum = 0.0, none_sum = 0.0;
  int counted = 0;
  for (std::size_t held = 0; held < cases.size(); ++held) {
    if (cases[held].measured.size() < 2) continue;  // no target placements
    std::vector<MeasuredCase> train_cv, train_all;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      for (const auto& m : cases[i].measured) {
        train_all.push_back(m);
        if (i != held) train_cv.push_back(m);
      }
    }
    const ToverlapModel cv = train_overlap_model_measured(train_cv, arch);
    const ToverlapModel all = train_overlap_model_measured(train_all, arch);

    const double e_none = bench_error(*cases[held].bench,
                                      cases[held].measured, none);
    const double e_cv = bench_error(*cases[held].bench,
                                    cases[held].measured, cv);
    const double e_all = bench_error(*cases[held].bench,
                                     cases[held].measured, all);
    std::printf("%-14s %6zu %11.1f%% %11.1f%% %11.1f%%\n",
                cases[held].bench->name.c_str(),
                cases[held].measured.size() - 1, 100.0 * e_none,
                100.0 * e_cv, 100.0 * e_all);
    none_sum += e_none;
    cv_sum += e_cv;
    all_sum += e_all;
    ++counted;
  }
  std::printf("%-14s %6s %11.1f%% %11.1f%% %11.1f%%\n", "mean", "",
              100.0 * none_sum / counted, 100.0 * cv_sum / counted,
              100.0 * all_sum / counted);
  std::printf("\nA LOBO-CV error close to the train-on-all error means the "
              "event-ratio features generalize across applications, as the "
              "paper claims for Eq. 11.\n");
  return 0;
}
