// Extension bench — the "quantified correlation" itself: the framework
// predicts a target placement *relative to the profiled sample* (prediction
// anchored on the sample's measured/predicted ratio). Turning anchoring off
// leaves the pure analytical estimate. This quantifies how much of the
// accuracy comes from the correlation structure vs the absolute models.
#include <cstdio>

#include "eval_common.hpp"

using namespace gpuhms;
using namespace gpuhms::bench;

int main() {
  EvalHarness harness;

  const ModelOptions anchored;  // default: anchor on the sample
  ModelOptions raw = anchored;
  raw.anchor_to_sample = false;

  const auto rows_anchored = harness.run_variant(anchored);
  const auto rows_raw = harness.run_variant(raw);

  print_comparison(
      "Sample anchoring ablation: absolute analytical estimate vs "
      "sample-correlated prediction",
      {"unanchored", "anchored"}, {rows_raw, rows_anchored});

  const double er = mean_abs_error(rows_raw);
  const double ea = mean_abs_error(rows_anchored);
  std::printf("anchoring reduces avg |error| from %.1f%% to %.1f%% — the "
              "models' job is capturing the placement-to-placement "
              "correlation, not absolute time (Sec. I of the paper).\n",
              100.0 * er, 100.0 * ea);
  return 0;
}
