// Extension bench — full-space ranking quality: the paper frames the models
// as an *advising tool* that finds promising placements in the m^n space,
// so the decisive metric is how well the predicted ordering of the ENTIRE
// legal placement space matches the measured ordering (Spearman rank
// correlation), and whether the predicted top choice is near-optimal. We
// grade our model and PORPLE side by side.
#include <cstdio>
#include <vector>

#include "baselines/porple.hpp"
#include "common/stats.hpp"
#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

int main() {
  const GpuArch& arch = kepler_arch();

  std::vector<workloads::BenchmarkCase> training = workloads::training_suite();
  std::vector<TrainingCase> cases;
  for (const auto& c : training) {
    cases.push_back({&c.kernel, c.sample});
    for (const auto& t : c.tests) cases.push_back({&c.kernel, t.placement});
  }
  const ToverlapModel overlap = train_overlap_model(cases, arch);

  struct Study {
    const char* name;
    KernelInfo kernel;
  };
  std::vector<Study> studies;
  studies.push_back({"vecadd", workloads::make_vecadd()});
  studies.push_back({"triad", workloads::make_triad()});
  studies.push_back({"stencil2d", workloads::make_stencil2d()});
  studies.push_back({"convolution", workloads::make_convolution()});
  studies.push_back({"neuralnet", workloads::make_neuralnet()});
  studies.push_back({"transpose", workloads::make_transpose()});

  std::printf("Full-space ranking quality (Spearman rank correlation of the "
              "whole legal placement space)\n\n");
  std::printf("%-12s %6s %10s %10s %14s\n", "kernel", "space", "ours",
              "porple", "top-1 regret");

  double ours_sum = 0.0, porple_sum = 0.0, regret_sum = 0.0;
  for (auto& s : studies) {
    const DataPlacement sample = DataPlacement::defaults(s.kernel);
    Predictor pred(s.kernel, arch, ModelOptions{}, overlap);
    pred.profile_sample(sample);

    const auto space = enumerate_placements(s.kernel, arch, 64);
    std::vector<double> measured, ours, porple;
    double best_measured = 1e300;
    std::size_t our_top = 0;
    for (std::size_t i = 0; i < space.size(); ++i) {
      const double m =
          static_cast<double>(simulate(s.kernel, space[i], arch).cycles);
      const double o = pred.predict(space[i]).total_cycles;
      measured.push_back(m);
      ours.push_back(o);
      porple.push_back(porple_cost(s.kernel, space[i], arch));
      best_measured = std::min(best_measured, m);
      if (o < ours[our_top]) our_top = i;
    }
    const double rho_ours = spearman(ours, measured);
    const double rho_pp = spearman(porple, measured);
    const double regret = measured[our_top] / best_measured - 1.0;
    ours_sum += rho_ours;
    porple_sum += rho_pp;
    regret_sum += regret;
    std::printf("%-12s %6zu %10.3f %10.3f %13.1f%%\n", s.name, space.size(),
                rho_ours, rho_pp, 100.0 * regret);
  }
  const double n = static_cast<double>(studies.size());
  std::printf("%-12s %6s %10.3f %10.3f %13.1f%%\n", "mean", "",
              ours_sum / n, porple_sum / n, 100.0 * regret_sum / n);
  std::printf("\npaper shape: the model orders placements consistently with "
              "measurement (it \"works as a performance advising tool\"), "
              "where the latency-only PORPLE model cannot.\n");
  return 0;
}
