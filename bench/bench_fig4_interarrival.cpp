// E3 — Fig. 4 reproduction: per-bank inter-arrival time distribution of DRAM
// requests for spmv, md, and matrixMul (default placements) versus the
// exponential distribution with the same mean, plus the coefficient of
// variation c_a averaged over banks.
//
// Paper: the inter-arrival times do not always follow an exponential
// distribution; average c_a = 1.11 / 2.22 / 1.72 (spmv / md / matrixMul) —
// GPU arrivals are bursty (c_a > 1).
#include <cstdio>
#include <vector>

#include "common/stats.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

void analyze(const char* name, const KernelInfo& kernel) {
  GpuSimulator sim(kepler_arch(), SimOptions{.record_interarrivals = true});
  sim.run(kernel, DataPlacement::defaults(kernel));
  const auto& per_bank = sim.interarrival_samples();

  // c_a per bank (banks with >= 8 samples), plus a pooled histogram.
  RunningStat ca_stat;
  double pooled_mean = 0.0;
  std::size_t pooled_n = 0;
  for (const auto& samples : per_bank) {
    if (samples.size() < 8) continue;
    RunningStat s;
    for (auto d : samples) s.add(static_cast<double>(d));
    ca_stat.add(s.cov());
    pooled_mean += s.mean() * static_cast<double>(samples.size());
    pooled_n += samples.size();
  }
  if (pooled_n == 0) {
    std::printf("%s: not enough DRAM traffic to analyze\n", name);
    return;
  }
  pooled_mean /= static_cast<double>(pooled_n);

  Histogram hist(0.0, pooled_mean * 4.0, 16);
  for (const auto& samples : per_bank) {
    for (auto d : samples) hist.add(static_cast<double>(d));
  }

  std::printf("%s: banks with traffic = %zu, mean interarrival = %.0f "
              "cycles\n", name, ca_stat.count(), pooled_mean);
  std::printf("  c_a over banks: mean %.2f, stddev %.2f %s\n",
              ca_stat.mean(), ca_stat.stddev(),
              ca_stat.mean() > 1.15 ? "(bursty, non-exponential)"
                                    : "(near-exponential)");
  std::printf("  %-22s %9s %12s\n", "interarrival bin", "measured",
              "exponential");
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const double expo =
        exponential_bin_mass(pooled_mean, hist.bin_lo(b), hist.bin_hi(b));
    std::printf("  [%7.0f, %7.0f)    %8.4f %12.4f\n", hist.bin_lo(b),
                hist.bin_hi(b), hist.density(b), expo);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Fig. 4: DRAM request inter-arrival distributions vs the "
              "exponential reference\n\n");
  analyze("spmv (vector_kernel)", workloads::make_spmv());
  analyze("md (compute_lj_force)", workloads::make_md());
  // A larger matrix than the registry default so the working set spills
  // L2 and produces enough DRAM traffic to histogram.
  analyze("matrixMul", workloads::make_matrixmul(192, 16));
  std::printf("paper shape: c_a varies widely across kernels and is far "
              "above 1 for some (paper: 1.11 / 2.22 / 1.72 for spmv / md / "
              "matrixMul) -- arrivals are not Markov, motivating G/G/1 "
              "over M/M/1. Which kernel is burstiest depends on the "
              "substrate; the heterogeneity and c_a > 1 are the result.\n");
  return 0;
}
