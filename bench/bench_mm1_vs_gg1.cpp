// Extension bench — the Sec. III-C3 argument, quantified: swap the G/G/1
// (Kingman) bank queues for M/M/1 queues that assume exponential arrivals
// and service, keeping everything else identical, and compare prediction
// accuracy on the evaluation suite. Fig. 4 showed GPU arrivals are bursty
// (c_a up to ~2.2 in the paper; up to ~3 on this substrate); M/M/1 throws
// that information away.
#include <cstdio>

#include "eval_common.hpp"

using namespace gpuhms;
using namespace gpuhms::bench;

int main() {
  EvalHarness harness;

  const ModelOptions gg1;  // the paper's model
  ModelOptions mm1 = gg1;
  mm1.queue_discipline = QueueDiscipline::MM1;
  ModelOptions no_queue = gg1;
  no_queue.queuing_model = false;

  const auto rows_gg1 = harness.run_variant(gg1);
  const auto rows_mm1 = harness.run_variant(mm1);
  const auto rows_none = harness.run_variant(no_queue);

  print_comparison(
      "Queue discipline comparison: constant latency vs M/M/1 vs G/G/1 "
      "(Kingman)",
      {"const lat", "M/M/1", "G/G/1"}, {rows_none, rows_mm1, rows_gg1});

  const double en = mean_abs_error(rows_none);
  const double em = mean_abs_error(rows_mm1);
  const double eg = mean_abs_error(rows_gg1);
  std::printf("avg |error|: constant %.1f%%, M/M/1 %.1f%%, G/G/1 %.1f%%\n",
              100.0 * en, 100.0 * em, 100.0 * eg);
  std::printf("paper shape: modeling the queue helps, and the general "
              "(G/G/1) discipline that keeps the measured c_a/c_s should "
              "not lose to the Markov assumption.\n");
  return 0;
}
