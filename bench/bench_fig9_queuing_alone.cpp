// E8 — Fig. 9 reproduction (ablation): the queuing model alone (with address
// mapping, without detailed instruction counting) vs the baseline and the
// full model.
//
// Paper: queuing alone improves accuracy by ~13.8% on average; layering the
// other techniques on top adds ~25.3%; the two techniques combined beat the
// baseline by ~39.1% — more than the sum of their separate gains.
#include <cstdio>

#include "eval_common.hpp"

using namespace gpuhms;
using namespace gpuhms::bench;

int main() {
  EvalHarness harness;

  const ModelOptions baseline = ModelOptions::baseline();

  ModelOptions queue_only = baseline;
  queue_only.queuing_model = true;
  queue_only.row_buffer_model = true;
  queue_only.address_mapping = true;  // mapping considered, per Fig. 9

  const ModelOptions full;

  const auto rows_base = harness.run_variant(baseline);
  const auto rows_queue = harness.run_variant(queue_only);
  const auto rows_full = harness.run_variant(full);

  print_comparison("Fig. 9: impact of the queuing model alone",
                   {"baseline", "+queuing", "our model"},
                   {rows_base, rows_queue, rows_full});

  const double eb = mean_abs_error(rows_base);
  const double eq = mean_abs_error(rows_queue);
  const double ef = mean_abs_error(rows_full);
  std::printf("relative improvement, queuing alone:        %.1f%% "
              "(paper: ~13.8%%)\n", 100.0 * (eb - eq) / eb);
  std::printf("relative improvement, rest on top:          %.1f%% "
              "(paper: ~25.3%%)\n", 100.0 * (eq - ef) / eq);
  std::printf("relative improvement, combined vs baseline: %.1f%% "
              "(paper: ~39.1%%, more than the sum of the parts)\n",
              100.0 * (eb - ef) / eb);
  return 0;
}
