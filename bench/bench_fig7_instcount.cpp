// E6 — Fig. 7 reproduction (ablation): the baseline model (no detailed
// instruction counting, no queuing, even bank distribution) vs the baseline
// plus instruction-replay and addressing-mode accounting.
//
// Paper: detailed instruction counting improves accuracy by ~17% on average,
// with fft_1, NN_S, and bfs_2 the most sensitive tests.
#include <cstdio>

#include "eval_common.hpp"

using namespace gpuhms;
using namespace gpuhms::bench;

int main() {
  EvalHarness harness;

  const ModelOptions baseline = ModelOptions::baseline();
  ModelOptions with_inst = baseline;
  with_inst.detailed_instruction_counting = true;

  const auto rows_base = harness.run_variant(baseline);
  const auto rows_inst = harness.run_variant(with_inst);

  print_comparison(
      "Fig. 7: impact of detailed instruction counting (replays + addressing "
      "mode)",
      {"baseline", "+inst counting"}, {rows_base, rows_inst});

  const double eb = mean_abs_error(rows_base);
  const double ei = mean_abs_error(rows_inst);
  std::printf("relative accuracy improvement from instruction counting: "
              "%.1f%% (paper: ~17%%; fft_1/NN_S/bfs_2 named most "
              "sensitive)\n", 100.0 * (eb - ei) / eb);
  for (const char* id : {"fft_1", "NN_S", "bfs_2"}) {
    for (std::size_t i = 0; i < rows_base.size(); ++i) {
      if (rows_base[i].id == id) {
        std::printf("  %-8s |err| %.1f%% -> %.1f%%\n", id,
                    100.0 * rows_base[i].abs_error(),
                    100.0 * rows_inst[i].abs_error());
      }
    }
  }
  return 0;
}
