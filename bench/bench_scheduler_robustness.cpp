// Extension bench — scheduler-mismatch robustness: the analytical model's
// trace analysis interleaves warps round-robin, but real SMs run greedy-
// then-oldest (GTO) schedulers. Re-measure the evaluation suite on a GTO
// substrate while the model keeps its round-robin assumption, and compare
// accuracy. A modest degradation means the paper's methodology does not
// silently depend on knowing the scheduler.
#include <cstdio>
#include <vector>

#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

double eval_error(WarpScheduler sched) {
  const GpuArch& arch = kepler_arch();
  SimOptions sim_opts;
  sim_opts.scheduler = sched;

  // Train the overlap model against measurements from the SAME substrate
  // (the paper trains against the machine it predicts for).
  std::vector<workloads::BenchmarkCase> training = workloads::training_suite();
  std::vector<MeasuredCase> cases;
  for (const auto& c : training) {
    GpuSimulator sim(arch, sim_opts);
    cases.push_back({&c.kernel, c.sample, sim.run(c.kernel, c.sample)});
    for (const auto& t : c.tests) {
      cases.push_back({&c.kernel, t.placement, sim.run(c.kernel, t.placement)});
    }
  }
  const ToverlapModel overlap =
      train_overlap_model_measured(cases, arch, ModelOptions{});

  double err = 0.0;
  int n = 0;
  for (const auto& c : workloads::evaluation_suite()) {
    GpuSimulator sim(arch, sim_opts);
    Predictor pred(c.kernel, arch, ModelOptions{}, overlap);
    pred.set_sample(c.sample, sim.run(c.kernel, c.sample));
    for (const auto& t : c.tests) {
      const double m = static_cast<double>(sim.run(c.kernel, t.placement).cycles);
      err += std::abs(pred.predict(t.placement).total_cycles / m - 1.0);
      ++n;
    }
  }
  return err / n;
}

}  // namespace

int main() {
  std::printf("Scheduler robustness: model (round-robin trace analysis) vs "
              "substrate scheduler\n\n");
  const double rr = eval_error(WarpScheduler::RoundRobin);
  std::printf("substrate = loose round-robin:  avg |error| %.1f%%\n",
              100.0 * rr);
  const double gto = eval_error(WarpScheduler::Gto);
  std::printf("substrate = greedy-then-oldest: avg |error| %.1f%%\n",
              100.0 * gto);
  std::printf("\nThe model never sees the scheduler choice; a bounded gap "
              "shows the methodology tolerates scheduler mismatch (the "
              "paper's K80 scheduler is undocumented).\n");
  return 0;
}
