// Extension bench — cross-architecture prediction study (ROADMAP:
// multi-architecture backend registry). In the spirit of Stevens &
// Klöckner's accuracy-vs-scope mechanism (PAPERS.md, arXiv:1904.09538) and
// Braun et al.'s portable parameterization (arXiv:2001.07104), we profile a
// kernel on architecture A and ask how well the model ranks the placement
// space of architecture B, for every interesting (A, B) pair of the
// ArchRegistry:
//
//   * transfer mode (Stevens & Klöckner): the predictor is parameterized AND
//     anchored entirely on A; truth is the simulator on B. This measures how
//     far a ranking travels unchanged across the fleet.
//   * hybrid mode (Braun et al.): the predictor is parameterized on B but
//     anchored to the sample measurement taken on A — the "port the profile,
//     not the machine" deployment. The anchor can be rejected when A's
//     counters are inconsistent with B's model; that rejection is itself a
//     result (it marks where the model family breaks) and is recorded
//     rather than treated as a failure.
//
// Emits BENCH_crossarch.json and self-asserts a minimum mean Spearman on
// the default->default identity pair (the in-arch ranking quality every
// cross-arch number is relative to).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/arch_registry.hpp"
#include "common/stats.hpp"
#include "model/predictor.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

constexpr double kIdentityFloor = 0.5;

struct CellResult {
  std::string workload;
  std::size_t space = 0;
  double transfer_rho = 0.0;
  double transfer_regret = 0.0;  // measured(top-1 pick) / best - 1
  double hybrid_rho = 0.0;
  bool hybrid_anchor_rejected = false;
  std::string hybrid_reject_reason;
};

struct PairResult {
  std::string profile_arch;
  std::string predict_arch;
  std::vector<CellResult> cells;
  double mean_transfer_rho = 0.0;
  double mean_hybrid_rho = 0.0;  // over cells whose anchor was accepted
};

double regret(const std::vector<double>& measured,
              const std::vector<double>& predicted) {
  std::size_t top = 0;
  double best = measured[0];
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] < predicted[top]) top = i;
    if (measured[i] < best) best = measured[i];
  }
  return measured[top] / best - 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cap = 32;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0)
      quick = true;
    else
      cap = static_cast<std::size_t>(std::strtoull(argv[i], nullptr, 10));
  }
  if (quick) cap = 12;

  struct Study {
    const char* name;
    KernelInfo kernel;
  };
  // Workloads where the in-arch model is an effective ranker (see
  // bench_rank_quality): cross-arch transfer is only meaningful relative to a
  // working in-arch baseline, so known-weak rankers (e.g. triad) are out.
  std::vector<Study> studies;
  studies.push_back({"convolution", workloads::make_convolution()});
  studies.push_back({"transpose", workloads::make_transpose()});
  if (!quick) {
    studies.push_back({"neuralnet", workloads::make_neuralnet()});
    studies.push_back({"stencil2d", workloads::make_stencil2d()});
  }

  // Profile-on-A / predict-on-B pairs. The kepler->kepler identity row is
  // the self-asserted baseline; the rest are the cross-arch study proper.
  const ArchRegistry& registry = ArchRegistry::builtin();
  struct PairSpec {
    const char* profile;
    const char* predict;
  };
  std::vector<PairSpec> pair_specs = {{"kepler", "kepler"},
                                      {"kepler", "maxwell"},
                                      {"kepler", "hbm2"},
                                      {"maxwell", "kepler"}};
  if (quick) pair_specs.resize(2);

  // T_overlap (Eq. 11) is fitted per architecture on the Table IV training
  // suite — the coefficients are part of the arch parameterization, so the
  // transfer predictor uses A's fit and the hybrid predictor B's.
  std::vector<workloads::BenchmarkCase> training = workloads::training_suite();
  std::vector<TrainingCase> cases;
  for (const auto& c : training) {
    cases.push_back({&c.kernel, c.sample});
    for (const auto& t : c.tests) cases.push_back({&c.kernel, t.placement});
  }
  std::vector<std::pair<std::string, ToverlapModel>> overlap_by_arch;
  auto overlap_for = [&](const std::string& arch_name,
                         const GpuArch& arch) -> const ToverlapModel& {
    for (const auto& [name, model] : overlap_by_arch)
      if (name == arch_name) return model;
    overlap_by_arch.emplace_back(arch_name, train_overlap_model(cases, arch));
    return overlap_by_arch.back().second;
  };

  std::vector<PairResult> pairs;
  std::printf(
      "Cross-arch ranking transfer (profile on A, rank placements on B)\n\n");
  std::printf("%-9s %-9s %-12s %6s %9s %8s %9s %s\n", "profile", "predict",
              "kernel", "space", "transfer", "regret", "hybrid", "anchor");

  for (const PairSpec& spec : pair_specs) {
    const GpuArch& arch_a = registry.find(spec.profile)->arch;
    const GpuArch& arch_b = registry.find(spec.predict)->arch;
    PairResult pr;
    pr.profile_arch = spec.profile;
    pr.predict_arch = spec.predict;
    double transfer_sum = 0.0, hybrid_sum = 0.0;
    std::size_t hybrid_n = 0;
    for (const Study& s : studies) {
      const DataPlacement sample = DataPlacement::defaults(s.kernel);
      // Transfer predictor: model and anchor both live on A.
      Predictor pred_a(s.kernel, arch_a, ModelOptions{},
                       overlap_for(spec.profile, arch_a));
      pred_a.profile_sample(sample);
      // Hybrid predictor: model on B, anchor measured on A.
      Predictor pred_b(s.kernel, arch_b, ModelOptions{},
                       overlap_for(spec.predict, arch_b));
      const SimResult measured_a = simulate(s.kernel, sample, arch_a);
      CellResult cell;
      cell.workload = s.name;
      const Status anchor = pred_b.try_set_sample(sample, measured_a);
      cell.hybrid_anchor_rejected = !anchor.ok();
      if (!anchor.ok()) cell.hybrid_reject_reason = anchor.message();

      // The placement space and the ground truth belong to B, restricted to
      // placements also legal on A (e.g. a 96 KiB shared allocation fits
      // maxwell but not kepler): the transfer predictor must be able to score
      // every candidate it ranks.
      auto space = enumerate_placements(s.kernel, arch_b, cap);
      std::erase_if(space, [&](const DataPlacement& p) {
        return validate_placement(s.kernel, p, arch_a).has_value();
      });
      std::vector<double> measured, transfer, hybrid;
      for (const DataPlacement& p : space) {
        measured.push_back(
            static_cast<double>(simulate(s.kernel, p, arch_b).cycles));
        transfer.push_back(pred_a.predict(p).total_cycles);
        if (!cell.hybrid_anchor_rejected)
          hybrid.push_back(pred_b.predict(p).total_cycles);
      }
      cell.space = space.size();
      cell.transfer_rho = spearman(transfer, measured);
      cell.transfer_regret = regret(measured, transfer);
      transfer_sum += cell.transfer_rho;
      if (!cell.hybrid_anchor_rejected) {
        cell.hybrid_rho = spearman(hybrid, measured);
        hybrid_sum += cell.hybrid_rho;
        ++hybrid_n;
      }
      char hybuf[16];
      if (cell.hybrid_anchor_rejected)
        std::snprintf(hybuf, sizeof hybuf, "-");
      else
        std::snprintf(hybuf, sizeof hybuf, "%.3f", cell.hybrid_rho);
      std::printf("%-9s %-9s %-12s %6zu %9.3f %7.1f%% %9s %s\n", spec.profile,
                  spec.predict, s.name, cell.space, cell.transfer_rho,
                  100.0 * cell.transfer_regret, hybuf,
                  cell.hybrid_anchor_rejected ? "REJECTED" : "ok");
      pr.cells.push_back(std::move(cell));
    }
    pr.mean_transfer_rho = transfer_sum / static_cast<double>(studies.size());
    pr.mean_hybrid_rho =
        hybrid_n > 0 ? hybrid_sum / static_cast<double>(hybrid_n) : 0.0;
    pairs.push_back(std::move(pr));
  }

  // JSON out.
  std::FILE* json = std::fopen("BENCH_crossarch.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_crossarch.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"cap\": %zu,\n  \"identity_floor\": %.2f,\n",
               cap, kIdentityFloor);
  std::fprintf(json, "  \"pairs\": [\n");
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const PairResult& pr = pairs[i];
    std::fprintf(json,
                 "    {\"profile_arch\": \"%s\", \"predict_arch\": \"%s\",\n"
                 "     \"mean_transfer_rho\": %.6f, \"mean_hybrid_rho\": "
                 "%.6f,\n     \"workloads\": [\n",
                 pr.profile_arch.c_str(), pr.predict_arch.c_str(),
                 pr.mean_transfer_rho, pr.mean_hybrid_rho);
    for (std::size_t j = 0; j < pr.cells.size(); ++j) {
      const CellResult& c = pr.cells[j];
      std::fprintf(
          json,
          "      {\"name\": \"%s\", \"space\": %zu, \"transfer_rho\": %.6f, "
          "\"transfer_regret\": %.6f, \"hybrid_rho\": %.6f, "
          "\"hybrid_anchor_rejected\": %s}%s\n",
          c.workload.c_str(), c.space, c.transfer_rho, c.transfer_regret,
          c.hybrid_rho, c.hybrid_anchor_rejected ? "true" : "false",
          j + 1 < pr.cells.size() ? "," : "");
    }
    std::fprintf(json, "     ]}%s\n", i + 1 < pairs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_crossarch.json\n");

  // Self-assert: the identity pair is the quality floor every cross-arch
  // number is read against; if in-arch ranking decays, the study is
  // meaningless and the bench fails loudly.
  for (const PairResult& pr : pairs) {
    if (pr.profile_arch == pr.predict_arch) {
      if (pr.mean_transfer_rho < kIdentityFloor) {
        std::fprintf(stderr,
                     "FAIL: identity pair %s->%s mean Spearman %.3f is below "
                     "the %.2f floor\n",
                     pr.profile_arch.c_str(), pr.predict_arch.c_str(),
                     pr.mean_transfer_rho, kIdentityFloor);
        return 1;
      }
      std::printf("identity self-assert OK: %s->%s mean Spearman %.3f >= "
                  "%.2f\n",
                  pr.profile_arch.c_str(), pr.predict_arch.c_str(),
                  pr.mean_transfer_rho, kIdentityFloor);
      return 0;
    }
  }
  std::fprintf(stderr, "FAIL: no identity pair in the study\n");
  return 1;
}
