// Serving-layer throughput: requests/sec through PredictionService for a
// cold cache (every predict runs the full model) versus a warm cache (every
// predict answers from the prediction cache), plus the pipelined batch path
// and a multithreaded warm-hit sweep (1..16 client threads on handle_line).
// Self-asserting: the warm phase must beat the cold phase by at least
// kMinWarmSpeedup, every multithreaded warm response must be byte-identical
// to the single-threaded reference, and the 1->16-thread scaling of the
// default (sharded, DESIGN §14) cache must clear a hardware-aware floor —
// 4x on >=16 cores, pro-rated by min(16, cores) below that, never under the
// no-collapse 0.3x (this container is single-core; the floor applied is
// recorded in the JSON). Emits BENCH_serve.json in the working directory
// for the perf trajectory.
//
// A connection-scaling phase drives the epoll event-loop SocketServer
// (DESIGN §15) with K mostly-idle Unix-socket connections for K in --conns
// (default 64,256,1024, capped under the fd soft limit) and measures p50/p99
// round-trip latency on one active connection. Self-asserting flat-p99
// envelope: the largest point (when >=256 connections) must stay within
// kConnP99Factor x the smallest point's p99 plus kConnP99SlackUs — idle
// connections must cost O(ready events), not O(open fds).
//
// Usage: ./bench/bench_serve_throughput [placements-per-kernel] [repeats]
//            [--conns=64,256,1024]
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "kernel/placement.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

// Conservative: measured warm/cold ratios are >20x (a warm hit is an LRU
// lookup plus JSON assembly; a cold miss runs the whole Eq. 1 model).
constexpr double kMinWarmSpeedup = 3.0;

// Graceful-drain ceiling: from begin_drain() to drained() (zero inflight)
// under concurrent client load. Requests are short (predicts), so a drain
// measured in seconds would mean the shed path is broken.
constexpr double kMaxDrainMs = 2000.0;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::string> build_requests(std::size_t per_kernel) {
  std::vector<std::string> lines;
  int id = 0;
  for (const char* name : {"triad", "spmv", "md", "transpose"}) {
    const workloads::BenchmarkCase bench = workloads::get_benchmark(name);
    const std::vector<DataPlacement> placements =
        enumerate_placements(bench.kernel, kepler_arch(), per_kernel);
    for (const DataPlacement& p : placements)
      lines.push_back("{\"id\":" + std::to_string(id++) +
                      ",\"op\":\"predict\",\"benchmark\":\"" +
                      std::string(name) + "\",\"placement\":\"" +
                      p.to_string() + "\"}");
  }
  return lines;
}

double time_pipeline(serve::PredictionService& service,
                     const std::vector<std::string>& lines,
                     std::vector<std::string>* responses_out) {
  const double t0 = now_ms();
  std::vector<std::string> responses = service.handle_pipeline(lines);
  const double wall = now_ms() - t0;
  if (responses_out) *responses_out = std::move(responses);
  return wall;
}

double time_line_at_a_time(serve::PredictionService& service,
                           const std::vector<std::string>& lines) {
  const double t0 = now_ms();
  for (const std::string& line : lines) (void)service.handle_line(line);
  return now_ms() - t0;
}

// Warm-hit scaling: `threads` client threads split the (already cached)
// request lines between them and hammer handle_line. Every response must be
// byte-identical to the single-threaded reference for the same line — the
// concurrency must never leak into the bytes. Returns the wall time.
double time_warm_multithread(serve::PredictionService& service,
                             const std::vector<std::string>& lines,
                             const std::vector<std::string>& reference,
                             int threads) {
  // Enough rounds over the request set that per-thread work dwarfs thread
  // spawn cost — otherwise the 16-thread point measures pthread_create.
  const std::size_t rounds =
      lines.size() >= 4096 ? 1 : (4096 + lines.size() - 1) / lines.size();
  const std::size_t total = lines.size() * rounds;
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> workers;
  const double t0 = now_ms();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < total;
           i += static_cast<std::size_t>(threads)) {
        const std::size_t line = i % lines.size();
        if (service.handle_line(lines[line]) != reference[line]) {
          corrupt.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall = now_ms() - t0;
  if (corrupt.load()) {
    std::fprintf(stderr,
                 "FAIL: a warm response diverged from the single-threaded "
                 "reference (%d threads)\n",
                 threads);
    std::exit(1);
  }
  // Normalized to one pass over `lines`, so callers can keep computing
  // requests/sec as lines.size() / (wall / 1000) regardless of rounds.
  return wall / static_cast<double>(rounds);
}

// Drain latency under load: client threads hammer a warm service, the main
// thread flips begin_drain() mid-stream and measures how long until the
// service reports drained() (no inflight work; later requests are shed with
// structured UNAVAILABLE responses, never dropped).
double measure_drain_latency_ms(const std::vector<std::string>& lines) {
  serve::PredictionService service{serve::ServeOptions{}};
  (void)service.handle_line(lines.front());  // warm the kernel cache

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); !stop.load();
           i = (i + 1) % lines.size())
        (void)service.handle_line(lines[i]), served.fetch_add(1);
    });
  }
  while (served.load() < 64) std::this_thread::yield();  // mid-load, not idle

  const double t0 = now_ms();
  service.begin_drain();
  while (!service.drained()) std::this_thread::yield();
  const double drain_ms = now_ms() - t0;

  stop.store(true);
  for (std::thread& c : clients) c.join();
  const serve::ServeStats stats = service.stats();
  if (stats.responses != stats.requests) {
    std::fprintf(stderr, "FAIL: drain lost responses (%llu of %llu)\n",
                 static_cast<unsigned long long>(stats.responses),
                 static_cast<unsigned long long>(stats.requests));
    std::exit(1);
  }
  return drain_ms;
}

// ---- connection-count scaling over the event-loop socket server ----------

// Flat-p99 envelope: p99 at the largest connection count must stay within
// factor x the smallest count's p99 plus an absolute slack. The factor is
// deliberately generous — this asserts the epoll server is O(ready events),
// not a latency SLO — and the slack absorbs single-core CI scheduler jitter.
constexpr double kConnP99Factor = 5.0;
constexpr double kConnP99SlackUs = 2000.0;

struct ConnScalingPoint {
  int connections = 0;  // open connections during the measurement (incl. active)
  double p50_us = 0.0;
  double p99_us = 0.0;
};

std::size_t fd_soft_limit() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  return static_cast<std::size_t>(rl.rlim_cur);
}

// One '\n'-terminated round trip on a blocking connected socket.
bool round_trip(int fd, const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t w =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  char c = 0;
  for (;;) {  // responses are small; byte-at-a-time keeps this dependency-free
    const ssize_t r = ::read(fd, &c, 1);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    if (c == '\n') return true;
  }
}

// Measures p50/p99 round-trip latency on one active connection while
// `target_conns - 1` idle connections sit on the same event loop. Uses a
// fresh warmed service per point so every point measures identical
// (cache-hit) work. Exits the process on any protocol failure.
ConnScalingPoint measure_conn_scaling(int target_conns,
                                      const std::string& request_line,
                                      int samples) {
  serve::ServeOptions serve_options;
  serve::PredictionService service{serve_options};
  (void)service.handle_line(request_line);  // prime kernel + prediction caches

  serve::ServerOptions server_options;
  server_options.socket_path = "/tmp/gpuhms_bench_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(target_conns) + ".sock";
  server_options.listen_backlog = std::max(256, target_conns);
  serve::SocketServer server{service, server_options};
  const Status st = server.listen();
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: conn-scaling listen: %s\n",
                 st.to_string().c_str());
    std::exit(1);
  }
  std::thread runner{[&server] { (void)server.run(); }};

  std::vector<int> fds;
  fds.reserve(static_cast<std::size_t>(target_conns));
  for (int i = 0; i < target_conns; ++i) {
    StatusOr<int> fd = serve::connect_unix(server_options.socket_path);
    if (!fd.ok()) {
      std::fprintf(stderr, "FAIL: conn-scaling connect %d/%d: %s\n", i,
                   target_conns, fd.status().to_string().c_str());
      std::exit(1);
    }
    fds.push_back(*fd);
  }
  // Every connection must be accepted (not parked in the listen backlog)
  // before we measure, or the point under-reports its own fd load.
  while (server.stats().connections_open <
         static_cast<std::uint64_t>(target_conns))
    std::this_thread::yield();

  const int active = fds.front();
  for (int i = 0; i < 32; ++i) {  // warm the server-side session path
    if (!round_trip(active, request_line)) {
      std::fprintf(stderr, "FAIL: conn-scaling warmup round trip\n");
      std::exit(1);
    }
  }
  std::vector<double> lat_us(static_cast<std::size_t>(samples));
  for (double& sample : lat_us) {
    const auto t0 = std::chrono::steady_clock::now();
    if (!round_trip(active, request_line)) {
      std::fprintf(stderr, "FAIL: conn-scaling measured round trip\n");
      std::exit(1);
    }
    sample = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  }

  for (int fd : fds) ::close(fd);
  server.stop();  // hard stop: clients are gone, nothing left to flush
  runner.join();

  ConnScalingPoint point;
  point.connections = target_conns;
  std::sort(lat_us.begin(), lat_us.end());
  point.p50_us = lat_us[lat_us.size() / 2];
  point.p99_us = lat_us[(lat_us.size() * 99) / 100 < lat_us.size()
                            ? (lat_us.size() * 99) / 100
                            : lat_us.size() - 1];
  return point;
}

std::vector<int> parse_conns_flag(int argc, char** argv) {
  std::vector<int> conns = {64, 256, 1024};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--conns=", 8) != 0) continue;
    conns.clear();
    const char* p = argv[i] + 8;
    while (*p) {
      char* end = nullptr;
      const long v = std::strtol(p, &end, 10);
      if (end == p) break;
      if (v > 0) conns.push_back(static_cast<int>(v));
      p = (*end == ',') ? end + 1 : end;
    }
  }
  std::sort(conns.begin(), conns.end());
  return conns;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t per_kernel =
      (argc > 1 && argv[1][0] != '-') ? std::strtoul(argv[1], nullptr, 10) : 64;
  const int repeats =
      (argc > 2 && argv[2][0] != '-') ? std::atoi(argv[2]) : 3;
  const std::vector<int> conns_requested = parse_conns_flag(argc, argv);

  const std::vector<std::string> lines = build_requests(per_kernel);
  std::printf("serve throughput (%zu requests over 4 kernels, best of %d)\n\n",
              lines.size(), repeats);

  // Cold: fresh service each repeat, so every request misses both caches
  // (kernel profiling + full model evaluation). Pipelined, so this is the
  // best the service can do without memoization.
  double cold_ms = 1e300;
  std::vector<std::string> cold_responses;
  for (int r = 0; r < repeats; ++r) {
    serve::PredictionService service{serve::ServeOptions{}};
    std::vector<std::string> responses;
    cold_ms = std::min(cold_ms, time_pipeline(service, lines, &responses));
    if (r == 0) cold_responses = std::move(responses);
  }

  // Warm: one service, primed by a first pass; then the same requests answer
  // from the prediction cache. Byte-identical responses are part of the
  // serving contract, so assert them here too.
  serve::PredictionService warm_service{serve::ServeOptions{}};
  (void)time_pipeline(warm_service, lines, nullptr);
  double warm_ms = 1e300;
  std::vector<std::string> warm_responses;
  for (int r = 0; r < repeats; ++r) {
    std::vector<std::string> responses;
    warm_ms = std::min(warm_ms, time_pipeline(warm_service, lines, &responses));
    if (r == 0) warm_responses = std::move(responses);
  }
  if (warm_responses != cold_responses) {
    std::fprintf(stderr,
                 "FAIL: warm responses diverge from cold responses\n");
    return 1;
  }
  const serve::ServeStats warm_stats = warm_service.stats();
  if (warm_stats.prediction_cache.hits == 0) {
    std::fprintf(stderr, "FAIL: warm phase never hit the prediction cache\n");
    return 1;
  }

  // Warm, one line at a time: what an interactive (unpipelined) client sees.
  double warm_line_ms = 1e300;
  for (int r = 0; r < repeats; ++r)
    warm_line_ms = std::min(warm_line_ms,
                            time_line_at_a_time(warm_service, lines));

  // Warm-hit scaling sweep: 1..16 client threads on handle_line, every
  // response checked against the single-threaded warm reference bytes.
  const int kThreadPoints[] = {1, 2, 4, 8, 16};
  double warm_mt_ms[5];
  for (std::size_t p = 0; p < 5; ++p) {
    warm_mt_ms[p] = 1e300;
    for (int r = 0; r < repeats; ++r)
      warm_mt_ms[p] = std::min(
          warm_mt_ms[p], time_warm_multithread(warm_service, lines,
                                               warm_responses,
                                               kThreadPoints[p]));
  }
  const double mt_scaling = warm_mt_ms[0] / warm_mt_ms[4];
  const unsigned hw = std::thread::hardware_concurrency();
  const double achievable = hw >= 16 ? 16.0 : static_cast<double>(hw);
  const double mt_floor = achievable / 4.0 > 0.3 ? achievable / 4.0 : 0.3;

  // Graceful drain under load (best of repeats; jitter-prone by nature).
  double drain_ms = 1e300;
  for (int r = 0; r < repeats; ++r)
    drain_ms = std::min(drain_ms, measure_drain_latency_ms(lines));

  // Connection-count scaling over the epoll socket server: K-1 idle
  // connections plus one active one, p50/p99 round-trip latency on the
  // active connection. Points that would not fit under the fd soft limit
  // (with headroom for the process's own fds) are dropped, loudly.
  const std::size_t fd_limit = fd_soft_limit();
  const int max_conns =
      static_cast<int>(fd_limit > 256 ? fd_limit - 256 : fd_limit / 2);
  std::vector<ConnScalingPoint> conn_points;
  for (int requested : conns_requested) {
    if (requested > max_conns) {
      std::printf("conn-scaling: skipping %d connections (fd soft limit %zu "
                  "allows at most %d)\n",
                  requested, fd_limit, max_conns);
      continue;
    }
    conn_points.push_back(
        measure_conn_scaling(requested, lines.front(), /*samples=*/400));
  }

  const double n = static_cast<double>(lines.size());
  const double speedup = cold_ms / warm_ms;
  std::printf("  %-22s %10s %14s\n", "phase", "wall ms", "requests/sec");
  std::printf("  %-22s %10.2f %14.1f\n", "cold (pipelined)", cold_ms,
              n / (cold_ms / 1000.0));
  std::printf("  %-22s %10.2f %14.1f\n", "warm (pipelined)", warm_ms,
              n / (warm_ms / 1000.0));
  std::printf("  %-22s %10.2f %14.1f\n", "warm (line-at-a-time)", warm_line_ms,
              n / (warm_line_ms / 1000.0));
  for (std::size_t p = 0; p < 5; ++p)
    std::printf("  warm (%2d threads)      %10.2f %14.1f\n", kThreadPoints[p],
                warm_mt_ms[p], n / (warm_mt_ms[p] / 1000.0));
  std::printf("\ncached-hit speedup: %.1fx (floor %.1fx)\n", speedup,
              kMinWarmSpeedup);
  std::printf("warm-hit scaling 1->16 threads: %.2fx (floor %.2fx, "
              "%u hardware threads, cache_backend %s)\n",
              mt_scaling, mt_floor, hw,
              to_string(warm_service.options().cache_backend));
  std::printf("drain latency under load: %.2f ms (ceiling %.0f ms)\n",
              drain_ms, kMaxDrainMs);
  if (!conn_points.empty()) {
    std::printf("\nconnection scaling (event-loop backend, 1 active + K-1 "
                "idle, %d samples)\n", 400);
    std::printf("  %-14s %12s %12s\n", "connections", "p50 us", "p99 us");
    for (const ConnScalingPoint& point : conn_points)
      std::printf("  %-14d %12.1f %12.1f\n", point.connections, point.p50_us,
                  point.p99_us);
  }

  std::FILE* json = std::fopen("BENCH_serve.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"requests\": %zu,\n"
               "  \"cold_pipelined_ms\": %.3f,\n"
               "  \"warm_pipelined_ms\": %.3f,\n"
               "  \"warm_line_at_a_time_ms\": %.3f,\n"
               "  \"cold_requests_per_sec\": %.1f,\n"
               "  \"warm_requests_per_sec\": %.1f,\n"
               "  \"cached_hit_speedup\": %.2f,\n"
               "  \"speedup_floor\": %.1f,\n"
               "  \"drain_latency_ms\": %.3f,\n"
               "  \"drain_latency_ceiling_ms\": %.1f,\n"
               "  \"prediction_cache_hits\": %llu,\n"
               "  \"prediction_cache_misses\": %llu,\n"
               "  \"cache_backend\": \"%s\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"warm_mt_requests_per_sec\": {\n"
               "    \"threads_1\": %.1f,\n"
               "    \"threads_2\": %.1f,\n"
               "    \"threads_4\": %.1f,\n"
               "    \"threads_8\": %.1f,\n"
               "    \"threads_16\": %.1f\n"
               "  },\n"
               "  \"warm_mt_scaling_1_to_16\": %.3f,\n"
               "  \"warm_mt_scaling_floor_applied\": %.3f,\n"
               "  \"fd_soft_limit\": %zu,\n"
               "  \"server_backend\": \"%s\",\n"
               "  \"conn_scaling_p99_factor\": %.1f,\n"
               "  \"conn_scaling_p99_slack_us\": %.1f,\n"
               "  \"conn_scaling\": [",
               lines.size(), cold_ms, warm_ms, warm_line_ms,
               n / (cold_ms / 1000.0), n / (warm_ms / 1000.0), speedup,
               kMinWarmSpeedup, drain_ms, kMaxDrainMs,
               static_cast<unsigned long long>(warm_stats.prediction_cache.hits),
               static_cast<unsigned long long>(
                   warm_stats.prediction_cache.misses),
               to_string(warm_service.options().cache_backend), hw,
               n / (warm_mt_ms[0] / 1000.0), n / (warm_mt_ms[1] / 1000.0),
               n / (warm_mt_ms[2] / 1000.0), n / (warm_mt_ms[3] / 1000.0),
               n / (warm_mt_ms[4] / 1000.0), mt_scaling, mt_floor, fd_limit,
               std::string(serve::to_string(serve::ServerBackend::kEventLoop))
                   .c_str(),
               kConnP99Factor, kConnP99SlackUs);
  for (std::size_t i = 0; i < conn_points.size(); ++i)
    std::fprintf(json,
                 "%s\n    {\"connections\": %d, \"p50_us\": %.1f, "
                 "\"p99_us\": %.1f}",
                 i ? "," : "", conn_points[i].connections,
                 conn_points[i].p50_us, conn_points[i].p99_us);
  std::fprintf(json, "%s]\n}\n", conn_points.empty() ? "" : "\n  ");
  std::fclose(json);
  std::printf("wrote BENCH_serve.json\n");

  if (speedup < kMinWarmSpeedup) {
    std::fprintf(stderr,
                 "FAIL: cached-hit speedup %.2fx is below the %.1fx floor\n",
                 speedup, kMinWarmSpeedup);
    return 1;
  }
  if (drain_ms > kMaxDrainMs) {
    std::fprintf(stderr,
                 "FAIL: drain latency %.2f ms exceeds the %.0f ms ceiling\n",
                 drain_ms, kMaxDrainMs);
    return 1;
  }
  if (mt_scaling < mt_floor) {
    std::fprintf(stderr,
                 "FAIL: warm-hit 1->16 scaling %.2fx is below the %.2fx "
                 "floor for this hardware (%u threads)\n",
                 mt_scaling, mt_floor, hw);
    return 1;
  }
  // Flat-p99 envelope: only meaningful with at least two points and a
  // largest point of >=256 connections (the smoke run measures 64 alone).
  if (conn_points.size() >= 2 && conn_points.back().connections >= 256) {
    const double bound =
        kConnP99Factor * conn_points.front().p99_us + kConnP99SlackUs;
    if (conn_points.back().p99_us > bound) {
      std::fprintf(stderr,
                   "FAIL: p99 %.1f us at %d connections exceeds the flat "
                   "envelope %.1f us (%.1fx p99 at %d connections + %.0f us)\n",
                   conn_points.back().p99_us, conn_points.back().connections,
                   bound, kConnP99Factor, conn_points.front().connections,
                   kConnP99SlackUs);
      return 1;
    }
  }
  return 0;
}
