// E7 — Fig. 8 reproduction (ablation): with instruction counting in place,
// add the G/G/1 queuing model under an even bank distribution, then the
// detected address mapping (= our full model).
//
// Paper: queuing with even distribution improves accuracy by ~31% over the
// baseline; the address mapping adds a further ~8.1%.
#include <cstdio>

#include "eval_common.hpp"

using namespace gpuhms;
using namespace gpuhms::bench;

int main() {
  EvalHarness harness;

  ModelOptions inst_only = ModelOptions::baseline();
  inst_only.detailed_instruction_counting = true;

  ModelOptions queuing_even = inst_only;
  queuing_even.queuing_model = true;
  queuing_even.row_buffer_model = true;
  queuing_even.address_mapping = false;  // even distribution of requests

  const ModelOptions full;  // everything on

  const auto rows_inst = harness.run_variant(inst_only);
  const auto rows_even = harness.run_variant(queuing_even);
  const auto rows_full = harness.run_variant(full);

  print_comparison(
      "Fig. 8: impact of the queuing model (instruction counting in place)",
      {"+inst only", "+queue(even)", "our model"},
      {rows_inst, rows_even, rows_full});

  // Baseline reference for the paper's "vs baseline" phrasing.
  const double eb = mean_abs_error(harness.run_variant(ModelOptions::baseline()));
  const double ei = mean_abs_error(rows_inst);
  const double ee = mean_abs_error(rows_even);
  const double ef = mean_abs_error(rows_full);
  (void)ei;
  std::printf("queuing (even distribution) relative improvement vs "
              "baseline: %.1f%% (paper: ~31%%)\n", 100.0 * (eb - ee) / eb);
  std::printf("address mapping further relative improvement:            "
              " %.1f%% (paper: ~8.1%%)\n", 100.0 * (ee - ef) / ee);
  return 0;
}
