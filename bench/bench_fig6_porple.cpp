// E5 — Fig. 6 reproduction: rank the five placements of neuralnet's weights
// array (G, C, S, T, 2T) with our model and with PORPLE's latency-oriented
// model; compare both rankings against the measured ranking.
//
// Paper: PORPLE mis-ranks (notably NN_S); our model ranks consistently with
// the measured performance.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/porple.hpp"
#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

struct Entry {
  std::string id;
  double measured = 0.0;
  double ours = 0.0;
  double porple = 0.0;
  int rank_measured = 0, rank_ours = 0, rank_porple = 0;
};

void assign_ranks(std::vector<Entry>& entries, double Entry::* key,
                  int Entry::* rank) {
  std::vector<Entry*> order;
  for (auto& e : entries) order.push_back(&e);
  std::sort(order.begin(), order.end(),
            [&](Entry* a, Entry* b) { return a->*key < b->*key; });
  for (std::size_t i = 0; i < order.size(); ++i)
    (*order[i]).*rank = static_cast<int>(i) + 1;
}

}  // namespace

int main() {
  const auto c = workloads::get_benchmark("neuralnet");
  const GpuArch& arch = kepler_arch();

  // Train the overlap model on the Table IV training suite.
  std::vector<workloads::BenchmarkCase> training = workloads::training_suite();
  std::vector<TrainingCase> cases;
  for (const auto& tc : training) {
    cases.push_back({&tc.kernel, tc.sample});
    for (const auto& t : tc.tests) cases.push_back({&tc.kernel, t.placement});
  }
  const ToverlapModel overlap = train_overlap_model(cases, arch);

  Predictor pred(c.kernel, arch, ModelOptions{}, overlap);
  pred.profile_sample(c.sample);

  std::vector<Entry> entries;
  entries.push_back({"NN_G",
                     static_cast<double>(pred.sample_result().cycles),
                     pred.predict(c.sample).total_cycles,
                     porple_cost(c.kernel, c.sample, arch)});
  for (const auto& t : c.tests) {
    Entry e;
    e.id = t.id;
    e.measured = static_cast<double>(simulate(c.kernel, t.placement, arch).cycles);
    e.ours = pred.predict(t.placement).total_cycles;
    e.porple = porple_cost(c.kernel, t.placement, arch);
    entries.push_back(e);
  }
  assign_ranks(entries, &Entry::measured, &Entry::rank_measured);
  assign_ranks(entries, &Entry::ours, &Entry::rank_ours);
  assign_ranks(entries, &Entry::porple, &Entry::rank_porple);

  std::printf("Fig. 6: placement ranking for neuralnet kernelFeedForward1 "
              "(weights in G/C/S/T/2T)\n\n");
  std::printf("%-8s %12s %14s %14s | %8s %8s %8s\n", "test", "measured",
              "our predict", "porple cost", "rank(m)", "rank(us)",
              "rank(pp)");
  for (const auto& e : entries) {
    std::printf("%-8s %12.0f %14.0f %14.0f | %8d %8d %8d\n", e.id.c_str(),
                e.measured, e.ours, e.porple, e.rank_measured, e.rank_ours,
                e.rank_porple);
  }

  int ours_agree = 0, porple_agree = 0;
  for (const auto& e : entries) {
    ours_agree += e.rank_ours == e.rank_measured;
    porple_agree += e.rank_porple == e.rank_measured;
  }
  std::printf("\nrank agreement with measurement: ours %d/%zu, PORPLE "
              "%d/%zu\n", ours_agree, entries.size(), porple_agree,
              entries.size());
  std::printf("paper shape: our ranking consistent with measured; PORPLE "
              "mis-ranks, worst on the shared placement (NN_S).\n");
  return 0;
}
