// Branch-and-bound scaling past the exhaustive enumeration cap: run
// search_branch_and_bound on the synthetic n-array kernel for n = 4..8
// (placement spaces 625 -> 390625) and record how the explored fraction of
// the space shrinks as the tree grows. Also re-checks, outside the unit
// tests, the three claims the search makes:
//   * bit-for-bit agreement with uncapped exhaustive search where the
//     latter is feasible (n = 4, 5);
//   * a certified optimum at n = 8 while evaluating < 10% of the 5^8 space;
//   * thread-count independence of every reported number at n = 8.
// Emits BENCH_bnb.json in the working directory; exits non-zero when any
// claim fails, so CI can gate on it.
//
// Usage: ./bench/bench_bnb_scaling [max_arrays]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "model/search.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Row {
  int n_arrays = 0;
  double space = 0.0;
  double wall_ms = 0.0;
  SearchResult bnb;
  bool matched_exhaustive = true;  // only checked where exhaustive ran
};

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++g_failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int max_arrays = argc > 1 ? std::atoi(argv[1]) : 8;
  const GpuArch& arch = kepler_arch();
  std::vector<Row> rows;

  std::printf("branch-and-bound scaling on bnb_synth (5^n placements)\n\n");
  std::printf("  %2s %10s %10s %10s %10s %9s %8s %10s\n", "n", "space",
              "expanded", "pruned", "evaluated", "explored", "gap",
              "wall ms");

  for (int n = 4; n <= max_arrays; ++n) {
    const KernelInfo k = workloads::make_bnb_synth(n);
    Predictor pred(k, arch);
    pred.profile_sample(DataPlacement::defaults(k));

    Row row;
    row.n_arrays = n;
    row.space = std::pow(5.0, n);
    const double t0 = now_ms();
    row.bnb = search_branch_and_bound(pred);
    row.wall_ms = now_ms() - t0;

    check(row.bnb.proven_optimal, "bnb must run to completion");
    check(row.bnb.optimality_gap == 0.0, "completed run must certify gap 0");

    if (n <= 5) {  // exhaustive ground truth is affordable here
      SearchOptions o;
      o.cap = 1u << 20;
      const SearchResult ex = search_exhaustive(pred, o);
      row.matched_exhaustive =
          !ex.space_truncated && ex.placement == row.bnb.placement &&
          ex.predicted_cycles == row.bnb.predicted_cycles;
      check(row.matched_exhaustive,
            "bnb must match uncapped exhaustive bit-for-bit");
    }

    const double explored =
        static_cast<double>(row.bnb.evaluated) / row.space;
    std::printf("  %2d %10.0f %10zu %10zu %10zu %8.2f%% %8.4f %10.1f\n", n,
                row.space, row.bnb.nodes_expanded, row.bnb.pruned_subtrees,
                row.bnb.evaluated, 100.0 * explored, row.bnb.optimality_gap,
                row.wall_ms);
    rows.push_back(row);
  }

  // The headline claim: at n = 8 the certified optimum costs < 10% of the
  // space, and every reported number is identical for any worker count.
  if (max_arrays >= 8) {
    const Row& r8 = rows.back();
    check(static_cast<double>(r8.bnb.evaluated) < 0.10 * r8.space,
          "n=8 must evaluate < 10% of the 5^8 space");

    const KernelInfo k = workloads::make_bnb_synth(8);
    Predictor pred(k, arch);
    pred.profile_sample(DataPlacement::defaults(k));
    std::printf("\n  determinism at n=8:");
    for (int threads : {1, 4, 16}) {
      SearchOptions o;
      o.num_threads = threads;
      const SearchResult r = search_branch_and_bound(pred, o);
      const bool same = r.placement == r8.bnb.placement &&
                        r.predicted_cycles == r8.bnb.predicted_cycles &&
                        r.nodes_expanded == r8.bnb.nodes_expanded &&
                        r.pruned_subtrees == r8.bnb.pruned_subtrees &&
                        r.evaluated == r8.bnb.evaluated;
      check(same, "n=8 result must be identical across thread counts");
      std::printf(" %d%s", threads, same ? " ok" : " MISMATCH");
    }
    std::printf("\n  optimum: %s (%.1f cycles)\n",
                r8.bnb.placement.to_string().c_str(),
                r8.bnb.predicted_cycles);
  }

  std::FILE* json = std::fopen("BENCH_bnb.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_bnb.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"kernel\": \"bnb_synth\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        json,
        "    {\"n_arrays\": %d, \"space\": %.0f, \"nodes_expanded\": %zu,\n"
        "     \"pruned_subtrees\": %zu, \"evaluated\": %zu,\n"
        "     \"explored_fraction\": %.6f, \"optimality_gap\": %.6f,\n"
        "     \"proven_optimal\": %s, \"matched_exhaustive\": %s,\n"
        "     \"best_placement\": \"%s\", \"predicted_cycles\": %.3f,\n"
        "     \"wall_ms\": %.2f}%s\n",
        r.n_arrays, r.space, r.bnb.nodes_expanded, r.bnb.pruned_subtrees,
        r.bnb.evaluated, static_cast<double>(r.bnb.evaluated) / r.space,
        r.bnb.optimality_gap, r.bnb.proven_optimal ? "true" : "false",
        r.matched_exhaustive ? "true" : "false",
        r.bnb.placement.to_string().c_str(), r.bnb.predicted_cycles,
        r.wall_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"failures\": %d\n}\n", g_failures);
  std::fclose(json);

  if (g_failures > 0) {
    std::fprintf(stderr, "\n%d claim(s) failed\n", g_failures);
    return 1;
  }
  std::printf("\nall claims hold; wrote BENCH_bnb.json\n");
  return 0;
}
