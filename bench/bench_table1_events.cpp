// E1 — Table I reproduction: cosine similarity between the execution-time
// vector and each performance-event vector across the data placements of the
// Sec. II-B benchmarks (cfd, convolution, md, matrixMul, spmv, transpose).
// Events below the 0.94 threshold print as N/A, as in the paper.
#include <cstdio>
#include <vector>

#include "sim/simulator.hpp"
#include "tools/event_selector.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

int main() {
  std::printf("Table I: cosine similarity of representative performance "
              "events vs execution time\n");
  std::printf("(threshold 0.94; N/A = below threshold, as in the paper)\n\n");

  const std::vector<std::string> events = {
      "issue_slots", "inst_issued", "inst_integer", "ldst_issued",
      "l2_transactions"};
  std::printf("%-12s", "GPU kernel");
  for (const auto& e : events) std::printf(" %16s", e.c_str());
  std::printf("\n");

  for (const auto& c : workloads::event_screening_suite()) {
    // Run the sample placement plus every placement test (Table IV set).
    std::vector<SimResult> runs;
    runs.push_back(simulate(c.kernel, c.sample));
    for (const auto& t : c.tests)
      runs.push_back(simulate(c.kernel, t.placement));
    const auto screen = screen_events(runs, 0.94);

    std::printf("%-12s", c.name.c_str());
    for (const auto& e : events) {
      const double s = screen.similarity.count(e) ? screen.similarity.at(e)
                                                  : 0.0;
      if (s >= screen.threshold) {
        std::printf(" %16.3f", s);
      } else {
        std::printf(" %13s(%.2f)", "N/A", s);
      }
    }
    std::printf("   [%zu placements]\n", runs.size());
  }

  std::printf("\npaper shape: issue_slots / inst_issued / inst_integer / "
              "ldst_issued / L2 transactions correlate strongly (>0.94) for "
              "most kernels, with per-kernel N/A cells.\n");
  return 0;
}
