// Multithreaded warm-hit cache throughput: gets/sec through BoundedCache at
// 1/2/4/8/16 threads, legacy mutex LruCache versus the sharded wait-free
// cache (DESIGN §14). This is the microbenchmark behind the serve hot path:
// at high hit rates the cache, not the model, decides how the daemon scales
// with client threads.
//
// Self-asserting on two axes:
//   * Correctness: every get must hit and return byte-identical bytes to
//     what was inserted — a wait-free read that returns torn or stale data
//     would "win" any throughput race, so the checksum guards the numbers.
//   * Scaling: sharded 1->16-thread throughput must not fall below a
//     hardware-aware floor. On >=16 cores the floor is the ISSUE's 4x; with
//     fewer cores the achievable parallelism is min(16, cores), so the
//     floor degrades to max(0.3, min(16, cores)/4) — on the single-core CI
//     container that means "16 threads must not collapse below 0.3x of one
//     thread" (the wait-free design's whole point is no collapse), and the
//     real 4x assertion arms itself automatically on real multicore
//     hardware. The floor actually applied is recorded in BENCH_cache.json
//     next to hardware_concurrency, so a reader can tell which contract a
//     checked-in snapshot locked.
//
// Usage: ./bench/bench_cache_multithread [keys] [total-gets-per-point]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/concurrent_cache.hpp"

using namespace gpuhms;

namespace {

constexpr int kThreadPoints[] = {1, 2, 4, 8, 16};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Serve-shaped keys and values: fingerprint-style hex keys, JSON-ish values
// big enough that the value copy-out (the part the epoch guard protects) is
// a real fraction of the probe.
std::string key_for(std::size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016zx|G,T,S", i * 0x9e3779b97f4a7c15ULL);
  return buf;
}
std::string value_for(std::size_t i) {
  return "{\"placement\":\"G,T,S\",\"predicted_cycles\":" +
         std::to_string(1000.0 + static_cast<double>(i)) + "}";
}

struct Point {
  int threads = 0;
  double wall_ms = 0;
  double gets_per_sec = 0;
};

// One measurement: `total_gets` warm hits split evenly across `threads`
// threads, all hammering the same cache. Every returned value is compared
// against the expected bytes; a single mismatch aborts the bench.
template <typename Cache>
Point measure(Cache& cache, std::size_t keys, int threads,
              std::size_t total_gets) {
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  const std::size_t per_thread = total_gets / static_cast<std::size_t>(threads);
  const double t0 = now_ms();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&cache, &corrupt, keys, per_thread, t] {
      // Stride by a thread-unique odd step so threads touch different keys
      // at any instant (no artificial same-line sharing) but cover the
      // whole key set.
      std::size_t i = static_cast<std::size_t>(t) * 7919;
      const std::size_t step = 2 * static_cast<std::size_t>(t) + 1;
      for (std::size_t n = 0; n < per_thread; ++n) {
        const std::size_t k = i % keys;
        const std::optional<std::string> got = cache.get(key_for(k));
        if (!got.has_value() || *got != value_for(k)) {
          corrupt.store(true);
          return;
        }
        i += step;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall = now_ms() - t0;
  if (corrupt.load()) {
    std::fprintf(stderr,
                 "FAIL: a warm get missed or returned wrong bytes "
                 "(%d threads)\n",
                 threads);
    std::exit(1);
  }
  const double done =
      static_cast<double>(per_thread) * static_cast<double>(threads);
  return {threads, wall, done / (wall / 1000.0)};
}

template <typename Cache>
std::vector<Point> sweep(Cache& cache, std::size_t keys,
                         std::size_t total_gets) {
  std::vector<Point> points;
  for (const int threads : kThreadPoints) {
    // Best of 3: thread spawn jitter dominates short runs.
    Point best{threads, 1e300, 0};
    for (int r = 0; r < 3; ++r) {
      const Point p = measure(cache, keys, threads, total_gets);
      if (p.wall_ms < best.wall_ms) best = p;
    }
    points.push_back(best);
  }
  return points;
}

void print_points(const char* name, const std::vector<Point>& points) {
  std::printf("  %s\n", name);
  for (const Point& p : points)
    std::printf("    %2d threads: %10.2f ms  %14.0f gets/sec\n", p.threads,
                p.wall_ms, p.gets_per_sec);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t keys =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4096;
  const std::size_t total_gets =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1 << 21;

  // Capacity 2x the key count: the warm phase must never evict, so every
  // get is a hit and the two backends serve identical bytes.
  const std::size_t capacity = keys * 2;
  BoundedCache<std::string, std::string> sharded(capacity,
                                                 CacheBackend::kSharded);
  BoundedCache<std::string, std::string> legacy(capacity,
                                                CacheBackend::kLegacyLru);
  for (std::size_t i = 0; i < keys; ++i) {
    sharded.put(key_for(i), value_for(i));
    legacy.put(key_for(i), value_for(i));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "cache warm-hit throughput (%zu keys, %zu gets per point, "
      "%u hardware threads)\n\n",
      keys, total_gets, hw);

  const std::vector<Point> sharded_points = sweep(sharded, keys, total_gets);
  const std::vector<Point> legacy_points = sweep(legacy, keys, total_gets);
  print_points("sharded (wait-free reads)", sharded_points);
  print_points("legacy (mutex LruCache)", legacy_points);

  const double sharded_scaling =
      sharded_points.back().gets_per_sec / sharded_points.front().gets_per_sec;
  const double legacy_scaling =
      legacy_points.back().gets_per_sec / legacy_points.front().gets_per_sec;
  // Hardware-aware floor: 4x on >=16 cores (the ISSUE contract), pro-rated
  // by achievable parallelism below that, never below the no-collapse 0.3x.
  const double achievable = hw >= 16 ? 16.0 : static_cast<double>(hw);
  const double floor =
      achievable / 4.0 > 0.3 ? achievable / 4.0 : 0.3;
  std::printf("\nsharded scaling 1->16 threads: %.2fx (floor %.2fx)\n",
              sharded_scaling, floor);
  std::printf("legacy  scaling 1->16 threads: %.2fx (reported only)\n",
              legacy_scaling);

  std::FILE* json = std::fopen("BENCH_cache.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_cache.json\n");
    return 1;
  }
  auto dump_points = [json](const char* name,
                            const std::vector<Point>& points) {
    std::fprintf(json, "  \"%s\": {\n", name);
    for (std::size_t i = 0; i < points.size(); ++i)
      std::fprintf(json, "    \"threads_%d\": %.0f%s\n", points[i].threads,
                   points[i].gets_per_sec, i + 1 < points.size() ? "," : "");
    std::fprintf(json, "  },\n");
  };
  std::fprintf(json, "{\n  \"keys\": %zu,\n  \"gets_per_point\": %zu,\n",
               keys, total_gets);
  std::fprintf(json, "  \"hardware_concurrency\": %u,\n", hw);
  dump_points("sharded_gets_per_sec", sharded_points);
  dump_points("legacy_gets_per_sec", legacy_points);
  std::fprintf(json,
               "  \"sharded_scaling_1_to_16\": %.3f,\n"
               "  \"legacy_scaling_1_to_16\": %.3f,\n"
               "  \"scaling_floor_applied\": %.3f\n"
               "}\n",
               sharded_scaling, legacy_scaling, floor);
  std::fclose(json);
  std::printf("wrote BENCH_cache.json\n");

  if (sharded_scaling < floor) {
    std::fprintf(stderr,
                 "FAIL: sharded 1->16 scaling %.2fx is below the %.2fx "
                 "floor for this hardware (%u threads)\n",
                 sharded_scaling, floor, hw);
    return 1;
  }
  return 0;
}
