// E11 — component microbenchmarks (google-benchmark): throughput of the hot
// paths every experiment leans on — cache simulation, DRAM timing, address
// decoding, coalescing, trace materialization, and a full simulator run.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "common/rng.hpp"
#include "dram/gddr.hpp"
#include "model/queuing.hpp"
#include "model/trace_analysis.hpp"
#include "sim/coalesce.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace gpuhms;

void BM_CacheAccess(benchmark::State& state) {
  SetAssocCache cache(l2_config(kepler_arch()));
  Rng rng(1);
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.next_below(1ull << 24);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addrs[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_AddressDecode(benchmark::State& state) {
  const auto m = kepler_mapping(kepler_arch());
  Rng rng(2);
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.next_below(1ull << 33);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.decode(addrs[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressDecode);

void BM_GddrAccess(benchmark::State& state) {
  GddrSystem gddr(kepler_arch(), kepler_mapping(kepler_arch()));
  Rng rng(3);
  std::uint64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gddr.access((rng.next_below(1ull << 24)) * 128, t));
    t += 2;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GddrAccess);

void BM_CoalesceWarp(benchmark::State& state) {
  const int stride = static_cast<int>(state.range(0));
  TraceOp op;
  op.cls = OpClass::Load;
  op.active_mask = 0xffffffffu;
  for (int l = 0; l < kWarpSize; ++l)
    op.addr[static_cast<std::size_t>(l)] = l * stride;
  std::vector<std::uint64_t> lines;
  for (auto _ : state) {
    coalesce_lines(op, 128, lines);
    benchmark::DoNotOptimize(lines.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoalesceWarp)->Arg(4)->Arg(128)->Arg(512);

void BM_KingmanDelay(benchmark::State& state) {
  GG1Bank b;
  b.tau_a = 120.0;
  b.sigma_a = 200.0;
  b.tau_s = 60.0;
  b.sigma_s = 45.0;
  b.lambda = 1.0 / 120.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kingman_queue_delay(b));
  }
}
BENCHMARK(BM_KingmanDelay);

void BM_TraceMaterialize(benchmark::State& state) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const auto p = DataPlacement::defaults(k);
  const TraceMaterializer mat(k, p, kepler_arch());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mat.generate(0, 4));
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_TraceMaterialize);

void BM_SimulateVecadd(benchmark::State& state) {
  const KernelInfo k = workloads::make_vecadd(1 << state.range(0));
  const auto p = DataPlacement::defaults(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(k, p));
  }
}
BENCHMARK(BM_SimulateVecadd)->Arg(12)->Arg(14);

void BM_AnalyzeTrace(benchmark::State& state) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto p = DataPlacement::defaults(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_trace(k, p, kepler_arch()));
  }
}
BENCHMARK(BM_AnalyzeTrace);

}  // namespace

BENCHMARK_MAIN();
